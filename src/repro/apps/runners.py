"""Convenience runners for the case-study applications.

These wrap the full flow (frontend -> HLS -> simulation -> trace) with
the right macro sets and reference checks, so examples, tests and
benchmarks all exercise exactly the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..core.program import Program, ProgramResult
from ..hls.cache import CompileCache
from ..hls.compiler import Accelerator, HLSOptions
from ..sim.config import SimConfig
from ..sim.executor import SimResult
from .gemm import EXTRA_VERSIONS, GEMM_VERSIONS, gemm_defines, gemm_source
from .pi import PI_SOURCE, pi_defines, pi_flops_per_iteration

__all__ = ["GemmRun", "PiRun", "compile_gemm", "compile_pi", "run_gemm",
           "run_pi"]


def compile_gemm(version: str, num_threads: int = 8, vector_len: int = 4,
                 block_size: int = 8, options: Optional[HLSOptions] = None,
                 compile_cache: Optional[CompileCache] = None) -> Accelerator:
    """Compile one GEMM version without simulating it.

    Builds the exact same :class:`~repro.core.program.Program` as
    :func:`run_gemm` (DIM is a runtime argument, so the compile does not
    depend on it), which means the compile-cache key is identical: an
    accelerator compiled here for analytic scoring is a guaranteed cache
    hit when the same configuration is later simulated for real.
    """

    defines = gemm_defines(version, num_threads=num_threads,
                           vector_len=vector_len, block_size=block_size)
    program = Program(gemm_source(version), defines=defines,
                      options=options, compile_cache=compile_cache)
    return program.accelerator


def compile_pi(num_threads: int = 8, bs_compute: int = 8,
               options: Optional[HLSOptions] = None,
               compile_cache: Optional[CompileCache] = None) -> Accelerator:
    """Compile the π kernel without simulating it (cache-key-identical
    to :func:`run_pi` for the same thread count and blocking factor)."""

    program = Program(PI_SOURCE, defines=pi_defines(bs_compute),
                      const_env={"threads": num_threads},
                      options=options, compile_cache=compile_cache)
    return program.accelerator


@dataclass
class GemmRun:
    """Result of one GEMM version's simulation.

    ``A``/``B`` are required: the ``partials``/``correct`` checks need
    the inputs, so every constructor must populate them (they used to
    default to ``None``, which crashed callers that skipped them).
    """

    version: str
    dim: int
    result: SimResult
    C: np.ndarray
    reference: np.ndarray
    accelerator: Accelerator
    A: np.ndarray
    B: np.ndarray
    num_threads: int = 8

    @property
    def cycles(self) -> int:
        return self.result.cycles

    def report(self, label: Optional[str] = None, peaks=None):
        """Trace report of this run (see :mod:`repro.report`)."""

        from ..report import build_report
        return build_report(self.result, label=label or
                            f"gemm-{self.version}", peaks=peaks)

    @property
    def correct(self) -> bool:
        """Does C match its expected value?

        The paper-exact ``naive`` version keeps, per element, the partial
        sum of whichever thread wrote last (its critical section protects
        a plain store, Fig. 3) — so each element must match *one* of the
        per-thread k-slice partial sums.  Every other version computes
        the full product.
        """

        if self.version == "naive":
            return bool(np.all(
                np.any(np.abs(self.C[None, :] - self.partials) <= 1e-3
                       + 1e-3 * np.abs(self.partials), axis=0)))
        return bool(np.allclose(self.C, self.reference, rtol=1e-3, atol=1e-3))

    @property
    def partials(self) -> np.ndarray:
        """[threads, DIM*DIM] per-thread k-slice partial sums (naive check)."""

        dim, threads = self.dim, self.num_threads
        A2 = self.A.reshape(dim, dim)
        B2 = self.B.reshape(dim, dim)
        return np.stack([(A2[:, t::threads] @ B2[t::threads, :]).ravel()
                         for t in range(threads)])


def run_gemm(version: str, dim: int = 64, num_threads: int = 8,
             seed: int = 42, options: Optional[HLSOptions] = None,
             sim_config: Optional[SimConfig] = None,
             vector_len: int = 4, block_size: int = 8,
             compile_cache: Optional[CompileCache] = None,
             attribution: bool = False) -> GemmRun:
    """Compile and simulate one GEMM version on random matrices.

    ``attribution=True`` turns on cycle accounting (stall-cause
    attribution) without the caller having to build a ``SimConfig``.
    """

    if dim % block_size != 0:
        raise ValueError(f"DIM={dim} must be a multiple of "
                         f"BLOCK_SIZE={block_size}")
    if dim % num_threads != 0:
        raise ValueError(f"DIM={dim} must be a multiple of "
                         f"num_threads={num_threads}")
    rng = np.random.default_rng(seed)
    A = rng.random(dim * dim, dtype=np.float32)
    B = rng.random(dim * dim, dtype=np.float32)
    C = np.zeros(dim * dim, dtype=np.float32)
    reference = (A.reshape(dim, dim) @ B.reshape(dim, dim)).ravel()

    defines = gemm_defines(version, num_threads=num_threads,
                           vector_len=vector_len, block_size=block_size)
    cfg = sim_config or SimConfig(thread_start_interval=50)
    if attribution and not cfg.attribution:
        cfg = replace(cfg, attribution=True)
    program = Program(gemm_source(version), defines=defines,
                      options=options, sim_config=cfg,
                      compile_cache=compile_cache)
    outcome: ProgramResult = program.run(A=A, B=B, C=C, DIM=dim)
    return GemmRun(version, dim, outcome.sim, C, reference,
                   program.accelerator, A=A, B=B, num_threads=num_threads)


@dataclass
class PiRun:
    """Result of one π-series simulation."""

    steps: int
    value: float
    result: SimResult
    accelerator: Accelerator

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def gflops(self) -> float:
        return self.result.gflops

    @property
    def error(self) -> float:
        return abs(self.value - float(np.pi))

    def report(self, label: Optional[str] = None, peaks=None):
        """Trace report of this run (see :mod:`repro.report`)."""

        from ..report import build_report
        return build_report(self.result, label=label or
                            f"pi-{self.steps}", peaks=peaks)


def run_pi(steps: int, num_threads: int = 8, bs_compute: int = 8,
           options: Optional[HLSOptions] = None,
           sim_config: Optional[SimConfig] = None,
           compile_cache: Optional[CompileCache] = None,
           attribution: bool = False) -> PiRun:
    """Compile and simulate the π series for ``steps`` iterations."""

    if steps % (num_threads * bs_compute) != 0:
        raise ValueError(f"steps={steps} must divide evenly over "
                         f"{num_threads} threads x BS_compute={bs_compute}")
    cfg = sim_config
    if attribution:
        cfg = replace(cfg or SimConfig(), attribution=True)
    program = Program(PI_SOURCE, defines=pi_defines(bs_compute),
                      const_env={"threads": num_threads},
                      options=options, sim_config=cfg,
                      compile_cache=compile_cache)
    outcome = program.run(steps=steps, threads=num_threads)
    return PiRun(steps, float(outcome.value), outcome.sim,
                 program.accelerator)
