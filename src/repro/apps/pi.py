"""The paper's second case study: an infinite series for pi (§V-D, Fig. 10).

The series  pi = sum_i 4 / (1 + x_i^2) * step,  x_i = (i + 0.5) * step
is distributed over the hardware threads; each thread accumulates into
a private vector register (one lane per unrolled sub-iteration) and the
final sum-reduction goes through a critical section.

The paper sweeps the iteration count (1M / 4M / 10M) to show how the
software overhead of starting the individual hardware threads dominates
small problem sizes (Figs. 11-13).
"""

from __future__ import annotations

__all__ = ["PI_SOURCE", "pi_defines", "pi_flops_per_iteration"]

#: Unroll factor of the compute loop (one vector lane per sub-iteration).
DEFAULT_BS_COMPUTE = 8

PI_SOURCE = r"""
#define DTYPE float

DTYPE pi(int steps, int threads) {
  DTYPE final_sum = 0.0;
  DTYPE step = 1.0 / (DTYPE) steps;
  #pragma omp target parallel map(to: step) map(tofrom: final_sum) \
      num_threads(threads)
  {
    int step_per_thread = steps / omp_get_num_threads();
    int start_i = omp_get_thread_num() * step_per_thread;
    VECTOR sum = {0.0f};
    DTYPE local_step = step;
    for (int i = 0; i < step_per_thread; i += BS_compute) {
      #pragma unroll BS_compute
      for (int j = 0; j < BS_compute; j++) {
        DTYPE x = ((DTYPE)(i + start_i + j) + 0.5f) * local_step;
        sum[j] += 4.0f / (1.0f + x*x);
      }
    }
    #pragma omp critical
    {
      for (int i = 0; i < BS_compute; i++) {
        final_sum += sum[i];
      }
    }
  }
  return final_sum * step;
}
"""


def pi_defines(bs_compute: int = DEFAULT_BS_COMPUTE) -> dict[str, object]:
    """Macro set for compiling the pi kernel."""

    return {"BS_compute": bs_compute, "VECTOR": f"float{bs_compute}"}


def pi_flops_per_iteration() -> int:
    """Floating-point operations per series iteration.

    Per iteration: cast+0.5 add, *step mul, x*x mul, 1+ add, 4/ div,
    sum += add  ->  6 FLOPs (the cast itself is not counted), matching
    how the profiling unit counts operator activations.
    """

    return 6
