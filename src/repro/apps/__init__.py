"""The paper's case-study applications as mini-C sources plus runners."""

from .gemm import (
    BLOCKED, DOUBLE_BUFFERED, GEMM_VERSIONS, NAIVE, NO_CRITICAL, VECTORIZED,
    gemm_defines, gemm_source,
)
from .pi import PI_SOURCE, pi_defines, pi_flops_per_iteration
from .runners import (
    GemmRun, PiRun, compile_gemm, compile_pi, run_gemm, run_pi,
)

__all__ = [
    "BLOCKED", "DOUBLE_BUFFERED", "GEMM_VERSIONS", "NAIVE", "NO_CRITICAL",
    "VECTORIZED", "gemm_defines", "gemm_source",
    "PI_SOURCE", "pi_defines", "pi_flops_per_iteration",
    "GemmRun", "PiRun", "compile_gemm", "compile_pi", "run_gemm", "run_pi",
]
