"""Exporters for the toolchain telemetry registry.

Three output shapes, pleasingly symmetric with the Paraver pipeline the
toolchain emits for the *simulated hardware*:

* :func:`render_summary` — human-readable table (span tree, counters,
  gauges) for terminal use;
* :func:`write_jsonl` — one JSON object per line (a ``meta`` record,
  then ``span``/``counter``/``gauge`` records), the storage format the
  ``repro stats`` subcommand reads back;
* :func:`write_chrome_trace` — Chrome trace-event JSON loadable in
  Perfetto or ``chrome://tracing`` (``ph:"X"`` complete events with
  microsecond timestamps, ordered monotonically by ``ts``).
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

from .core import SpanRecord, Telemetry

__all__ = [
    "render_summary", "chrome_trace_events", "render_chrome_trace",
    "write_chrome_trace", "write_jsonl", "read_jsonl",
    "summarize_records", "export",
]

_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# human-readable summary
# ----------------------------------------------------------------------
def render_summary(telemetry: Telemetry) -> str:
    """Render the span tree + counters + gauges as an aligned table."""

    lines = ["toolchain telemetry summary",
             "===========================", ""]
    if telemetry.spans:
        lines.append(f"{'span':44} {'total ms':>10} {'calls':>6}")
        lines.append("-" * 62)
        lines.extend(_tree_lines(telemetry.spans))
    else:
        lines.append("(no spans recorded)")
    if telemetry.counters:
        lines += ["", f"{'counter':44} {'value':>16}", "-" * 62]
        for name in sorted(telemetry.counters):
            lines.append(f"{name:44} {_fmt_num(telemetry.counters[name]):>16}")
    if telemetry.gauges:
        lines += ["", f"{'gauge':44} {'value':>16}", "-" * 62]
        for name in sorted(telemetry.gauges):
            lines.append(f"{name:44} {_fmt_num(telemetry.gauges[name]):>16}")
    snapshots = getattr(telemetry, "job_snapshots", None)
    if snapshots:
        from .merge import render_job_breakdown
        lines += ["", render_job_breakdown(snapshots).rstrip("\n")]
    return "\n".join(lines) + "\n"


def _fmt_num(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.3f}"


def _tree_lines(spans: list[SpanRecord]) -> list[str]:
    """Aggregate spans by (parent-name-path) and render indented rows."""

    # Path of each span id -> tuple of names from root
    by_id = {record.id: record for record in spans}
    paths: dict[int, tuple[str, ...]] = {}

    def path_of(record: SpanRecord) -> tuple[str, ...]:
        cached = paths.get(record.id)
        if cached is not None:
            return cached
        if record.parent == -1 or record.parent not in by_id:
            path: tuple[str, ...] = (record.name,)
        else:
            path = path_of(by_id[record.parent]) + (record.name,)
        paths[record.id] = path
        return path

    totals: dict[tuple[str, ...], tuple[float, int]] = {}
    order: list[tuple[str, ...]] = []
    for record in sorted(spans, key=lambda r: r.start_ns):
        path = path_of(record)
        if path not in totals:
            totals[path] = (0.0, 0)
            order.append(path)
        ms, calls = totals[path]
        totals[path] = (ms + record.duration_ms, calls + 1)

    # Render parents before children, preserving first-seen order.
    first_seen = {path: index for index, path in enumerate(order)}
    ordered = sorted(order, key=lambda p: tuple(
        first_seen.get(p[:i + 1], len(order)) for i in range(len(p))))
    lines = []
    for path in ordered:
        ms, calls = totals[path]
        label = "  " * (len(path) - 1) + path[-1]
        lines.append(f"{label:44} {ms:10.3f} {calls:6d}")
    return lines


# ----------------------------------------------------------------------
# JSON-lines metrics file
# ----------------------------------------------------------------------
def jsonl_records(telemetry: Telemetry) -> list[dict[str, Any]]:
    """The registry as a list of plain-dict records (jsonl lines)."""

    records: list[dict[str, Any]] = [{
        "kind": "meta", "schema": _SCHEMA_VERSION,
        "tool": "repro-telemetry", "wall_start": telemetry.wall_start,
    }]
    for record in sorted(telemetry.spans, key=lambda r: r.start_ns):
        entry: dict[str, Any] = {
            "kind": "span", "id": record.id, "parent": record.parent,
            "name": record.name, "cat": record.category,
            "ts_us": round(record.start_us, 3),
            "dur_us": round(record.duration_us, 3),
            "depth": record.depth,
        }
        if record.args:
            entry["args"] = record.args
        records.append(entry)
    for name in sorted(telemetry.counters):
        records.append({"kind": "counter", "name": name,
                        "value": telemetry.counters[name]})
    for name in sorted(telemetry.gauges):
        records.append({"kind": "gauge", "name": name,
                        "value": telemetry.gauges[name]})
    return records


def write_jsonl(telemetry: Telemetry, path: str) -> None:
    """Write the registry as a JSON-lines metrics file."""

    with open(path, "w") as out:
        for record in jsonl_records(telemetry):
            out.write(json.dumps(record, sort_keys=True) + "\n")


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Read a metrics file back; raises ``ValueError`` on garbled input."""

    records: list[dict[str, Any]] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not JSON: {exc}") from exc
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError(f"{path}:{line_no}: not a telemetry record")
            records.append(record)
    if not records:
        raise ValueError(f"{path}: empty metrics file")
    return records


def summarize_records(records: list[dict[str, Any]]) -> str:
    """Per-phase summary of a metrics file (the ``repro stats`` view)."""

    spans = [r for r in records if r.get("kind") == "span"]
    counters = [r for r in records if r.get("kind") == "counter"]
    gauges = [r for r in records if r.get("kind") == "gauge"]

    lines = ["telemetry metrics", "================="]
    if spans:
        phase_ms: dict[str, float] = {}
        phase_calls: dict[str, int] = {}
        order: list[str] = []
        for record in spans:
            if record.get("parent", -1) != -1:
                continue
            name = record["name"]
            if name not in phase_ms:
                phase_ms[name] = 0.0
                phase_calls[name] = 0
                order.append(name)
            phase_ms[name] += record.get("dur_us", 0.0) / 1e3
            phase_calls[name] += 1
        total = sum(phase_ms.values()) or 1.0
        lines += ["", f"{'phase':24} {'total ms':>10} {'share':>7} {'calls':>6}",
                  "-" * 50]
        for name in order:
            lines.append(f"{name:24} {phase_ms[name]:10.3f} "
                         f"{100 * phase_ms[name] / total:6.1f}% "
                         f"{phase_calls[name]:6d}")
        nested: dict[str, tuple[float, int]] = {}
        nested_order: list[tuple[int, str]] = []
        for record in spans:
            if record.get("parent", -1) == -1:
                continue
            key = (record.get("depth", 1), record["name"])
            if record["name"] not in nested:
                nested[record["name"]] = (0.0, 0)
                nested_order.append(key)
            ms, calls = nested[record["name"]]
            nested[record["name"]] = (ms + record.get("dur_us", 0.0) / 1e3,
                                      calls + 1)
        if nested:
            lines += ["", f"{'nested span':24} {'total ms':>10} {'calls':>6}",
                      "-" * 50]
            for depth, name in nested_order:
                ms, calls = nested[name]
                label = "  " * max(0, depth - 1) + name
                lines.append(f"{label:24} {ms:10.3f} {calls:6d}")
    else:
        lines.append("(no spans)")
    if counters:
        lines += ["", f"{'counter':40} {'value':>16}", "-" * 58]
        for record in counters:
            lines.append(f"{record['name']:40} "
                         f"{_fmt_num(record['value']):>16}")
    if gauges:
        lines += ["", f"{'gauge':40} {'value':>16}", "-" * 58]
        for record in gauges:
            lines.append(f"{record['name']:40} "
                         f"{_fmt_num(record['value']):>16}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Chrome trace-event JSON (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------
def chrome_trace_events(telemetry: Telemetry, *,
                        pid: Optional[int] = None,
                        tid: Optional[int] = None,
                        process_name: str = "repro toolchain",
                        thread_name: str = "compile→simulate→trace",
                        base_ts_us: float = 0.0) -> list[dict[str, Any]]:
    """Trace events ordered monotonically by ``ts`` (microseconds).

    Events carry the *real* pid/tid of the recording process (captured
    on the registry at creation) so traces from several processes can
    be concatenated and still render as distinct process tracks in
    Perfetto; ``pid``/``tid`` override the mapping and ``base_ts_us``
    shifts the timeline (both used by :mod:`repro.telemetry.merge`).
    """

    pid = int(pid if pid is not None
              else getattr(telemetry, "pid", 0) or os.getpid())
    tid = int(tid if tid is not None
              else getattr(telemetry, "tid", 0) or pid)
    events: list[dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": tid, "ts": 0,
         "args": {"name": process_name}},
        {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid, "ts": 0,
         "args": {"name": thread_name}},
    ]
    last_ts = base_ts_us
    for record in sorted(telemetry.spans, key=lambda r: r.start_ns):
        ts = round(base_ts_us + record.start_us, 3)
        event: dict[str, Any] = {
            "ph": "X", "name": record.name, "cat": record.category,
            "ts": ts, "dur": round(record.duration_us, 3),
            "pid": pid, "tid": tid,
        }
        if record.args:
            event["args"] = record.args
        events.append(event)
        if ts > last_ts:
            last_ts = ts
    # Counter samples at the end of the timeline, one track per counter.
    for name in sorted(telemetry.counters):
        events.append({"ph": "C", "name": name, "pid": pid, "ts": last_ts,
                       "args": {"value": telemetry.counters[name]}})
    return events


def render_chrome_trace(telemetry: Telemetry) -> str:
    payload = {
        "traceEvents": chrome_trace_events(telemetry),
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro-telemetry",
            "wall_start": telemetry.wall_start,
            "gauges": dict(sorted(telemetry.gauges.items())),
        },
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def write_chrome_trace(telemetry: Telemetry, path: str) -> None:
    """Write a Chrome trace-event JSON file."""

    with open(path, "w") as out:
        out.write(render_chrome_trace(telemetry) + "\n")


# ----------------------------------------------------------------------
def export(telemetry: Telemetry, fmt: str,
           path: Optional[str] = None) -> Optional[str]:
    """Export in ``fmt`` (``summary``/``jsonl``/``chrome``).

    With ``path`` the output is written there and ``None`` is returned;
    without, the rendered text is returned for printing.
    """

    if fmt == "summary":
        text = render_summary(telemetry)
    elif fmt == "jsonl":
        if path is not None:
            write_jsonl(telemetry, path)
            return None
        text = "\n".join(json.dumps(r, sort_keys=True)
                         for r in jsonl_records(telemetry)) + "\n"
    elif fmt == "chrome":
        text = render_chrome_trace(telemetry) + "\n"
    else:
        raise ValueError(f"unknown telemetry format {fmt!r}")
    if path is None:
        return text
    with open(path, "w") as out:
        out.write(text)
    return None
