"""Process-wide toolchain telemetry: spans, counters, gauges.

The paper's thesis is that you cannot optimize what you cannot see — it
makes the *simulated hardware* observable through Paraver traces.  This
module applies the same idea to the toolchain itself: every layer of
the compile→simulate→trace pipeline (frontend, HLS, simulator,
profiling recorder, Paraver writer) reports wall-clock **spans** and
cheap **counters**/**gauges** into one process-wide registry, which the
exporters (:mod:`repro.telemetry.exporters`) render as a summary table,
a JSON-lines metrics file, or a Chrome trace-event file loadable in
Perfetto / ``chrome://tracing``.

Design constraints:

* **Disabled by default, near-zero overhead when off.**  ``span()``
  returns a shared no-op context manager and ``add()``/``set_gauge()``
  return after one attribute check, so instrumentation may be left in
  hot-ish paths unconditionally.  (Truly hot loops — the discrete-event
  engine — keep plain integer counters of their own and report them
  once per run; see :meth:`repro.sim.engine.Engine.stats`.)
* **Never perturbs simulated results.**  Telemetry measures wall time
  and tool-level quantities only; the simulated cycle counts are
  bit-identical with telemetry on or off.
* **Two clocks.**  Span timestamps come from the monotonic
  ``time.perf_counter_ns`` clock (relative to the session origin);
  the session additionally records a wall-clock start so exported
  metrics can be placed in calendar time.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "SNAPSHOT_SCHEMA", "SpanRecord", "Telemetry", "get_telemetry",
    "configure", "telemetry_enabled", "span", "add", "set_gauge",
    "max_gauge", "traced",
]

#: schema tag of the lossless :meth:`Telemetry.snapshot` wire format
SNAPSHOT_SCHEMA = "repro.telemetry/1"


@dataclass
class SpanRecord:
    """One completed span (a timed, named region of toolchain work)."""

    id: int
    parent: int          # id of the enclosing span, -1 for roots
    name: str
    category: str
    start_ns: int        # monotonic ns relative to the session origin
    end_ns: int
    depth: int           # nesting depth at entry (0 for roots)
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return (self.end_ns - self.start_ns) / 1e6

    @property
    def start_us(self) -> float:
        return self.start_ns / 1e3

    @property
    def duration_us(self) -> float:
        return (self.end_ns - self.start_ns) / 1e3


class _NullSpan:
    """Shared no-op span used on the disabled path (zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **args: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """A live (open) span; records itself into the registry on exit."""

    __slots__ = ("_telemetry", "name", "category", "args",
                 "id", "parent", "depth", "start_ns")

    def __init__(self, telemetry: "Telemetry", name: str, category: str,
                 args: dict[str, Any]):
        self._telemetry = telemetry
        self.name = name
        self.category = category
        self.args = args

    def set(self, **args: Any) -> None:
        """Attach key/value annotations to the span."""

        self.args.update(args)

    def __enter__(self) -> "_Span":
        t = self._telemetry
        self.id = next(t._ids)
        self.parent = t._stack[-1].id if t._stack else -1
        self.depth = len(t._stack)
        t._stack.append(self)
        self.start_ns = time.perf_counter_ns() - t.origin_ns
        return self

    def __exit__(self, *exc: object) -> bool:
        end_ns = time.perf_counter_ns() - self._telemetry.origin_ns
        t = self._telemetry
        if t._stack and t._stack[-1] is self:
            t._stack.pop()
        t.spans.append(SpanRecord(self.id, self.parent, self.name,
                                  self.category, self.start_ns, end_ns,
                                  self.depth, self.args))
        return False


class Telemetry:
    """A registry of spans, counters and gauges for one session."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.origin_ns = time.perf_counter_ns()
        self.wall_start = time.time()
        self.pid = os.getpid()
        self.tid = threading.get_native_id()
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: tagged per-job snapshots folded back in by the sweep runner
        self.job_snapshots: list[dict[str, Any]] = []
        self._stack: list[_Span] = []
        self._ids = itertools.count()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all recorded data and restart the clocks."""

        self.origin_ns = time.perf_counter_ns()
        self.wall_start = time.time()
        self.pid = os.getpid()
        self.tid = threading.get_native_id()
        self.spans = []
        self.counters = {}
        self.gauges = {}
        self.job_snapshots = []
        self._stack = []
        self._ids = itertools.count()

    @contextmanager
    def capture(self, enabled: Optional[bool] = None) -> Iterator["Telemetry"]:
        """Temporarily swap in fresh, isolated recording state.

        Everything recorded inside the ``with`` block — spans, counters,
        gauges — lands in a clean registry whose clocks start at entry,
        and is thrown away at exit when the previous state (including
        any *open* spans) is restored; take :meth:`snapshot` before the
        block ends to keep it.  ``enabled`` optionally overrides the
        enablement for the duration (the sweep runner uses
        ``capture(enabled=True)`` to collect per-job telemetry even
        when the surrounding session is off).

        This is what keeps per-job numbers attributable: consecutive
        in-process sweep jobs no longer accumulate counters into one
        shared registry.
        """

        saved = (self.enabled, self.origin_ns, self.wall_start, self.pid,
                 self.tid, self.spans, self.counters, self.gauges,
                 self.job_snapshots, self._stack, self._ids)
        self.reset()
        if enabled is not None:
            self.enabled = enabled
        try:
            yield self
        finally:
            (self.enabled, self.origin_ns, self.wall_start, self.pid,
             self.tid, self.spans, self.counters, self.gauges,
             self.job_snapshots, self._stack, self._ids) = saved

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "toolchain",
             **args: Any):
        """Context manager timing a named region (nests via a stack)."""

        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, category, args)

    def traced(self, name: Optional[str] = None,
               category: str = "toolchain") -> Callable:
        """Decorator form of :meth:`span`."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any):
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(span_name, category=category):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # ------------------------------------------------------------------
    # counters / gauges
    # ------------------------------------------------------------------
    def add(self, name: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into counter ``name`` (no-op when off)."""

        if not self.enabled or not amount:
            return
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name`` (no-op when off)."""

        if not self.enabled:
            return
        self.gauges[name] = float(value)

    def max_gauge(self, name: str, value: float) -> None:
        """Record the high-water mark of gauge ``name`` (no-op when off)."""

        if not self.enabled:
            return
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = float(value)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def phase_totals_ms(self) -> dict[str, float]:
        """Total wall milliseconds per *root* span name (pipeline phase)."""

        totals: dict[str, float] = {}
        for record in self.spans:
            if record.parent == -1:
                totals[record.name] = (totals.get(record.name, 0.0)
                                       + record.duration_ms)
        return totals

    def snapshot(self) -> dict[str, Any]:
        """Lossless plain-dict export of the registry.

        The dict doubles as the cross-process wire format
        (schema ``repro.telemetry/1``): sweep workers snapshot their
        registry and ship it back through the job-result envelope, the
        parent reconstructs with :meth:`from_snapshot` or merges many
        snapshots into one timeline (:mod:`repro.telemetry.merge`).
        ``phases_ms`` / ``num_spans`` are derived conveniences kept for
        quick summaries; ``spans`` carries every record verbatim.
        """

        spans: list[dict[str, Any]] = []
        for record in self.spans:
            entry: dict[str, Any] = {
                "id": record.id, "parent": record.parent,
                "name": record.name, "cat": record.category,
                "start_ns": record.start_ns, "end_ns": record.end_ns,
                "depth": record.depth,
            }
            if record.args:
                entry["args"] = dict(record.args)
            spans.append(entry)
        return {
            "schema": SNAPSHOT_SCHEMA,
            "wall_start": self.wall_start,
            "pid": self.pid,
            "tid": self.tid,
            "phases_ms": self.phase_totals_ms(),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "num_spans": len(self.spans),
            "spans": spans,
        }

    @classmethod
    def from_snapshot(cls, snap: dict[str, Any]) -> "Telemetry":
        """Lossless inverse of :meth:`snapshot`.

        ``Telemetry.from_snapshot(t.snapshot()).snapshot() ==
        t.snapshot()`` for any registry ``t``.  The reconstructed
        registry is disabled (it is a record, not a live session).
        """

        if not isinstance(snap, dict):
            raise ValueError("telemetry snapshot must be a dict, got "
                             f"{type(snap).__name__}")
        schema = snap.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(f"telemetry snapshot schema is {schema!r}, "
                             f"expected {SNAPSHOT_SCHEMA!r}")
        registry = cls(enabled=False)
        registry.wall_start = float(snap.get("wall_start",
                                             registry.wall_start))
        registry.pid = int(snap.get("pid", registry.pid))
        registry.tid = int(snap.get("tid", registry.tid))
        registry.counters = {str(k): float(v)
                             for k, v in snap.get("counters", {}).items()}
        registry.gauges = {str(k): float(v)
                           for k, v in snap.get("gauges", {}).items()}
        max_id = -1
        for entry in snap.get("spans", []):
            record = SpanRecord(
                id=int(entry["id"]), parent=int(entry.get("parent", -1)),
                name=str(entry["name"]),
                category=str(entry.get("cat", "toolchain")),
                start_ns=int(entry["start_ns"]),
                end_ns=int(entry["end_ns"]),
                depth=int(entry.get("depth", 0)),
                args=dict(entry.get("args", {})))
            registry.spans.append(record)
            max_id = max(max_id, record.id)
        registry._ids = itertools.count(max_id + 1)
        return registry


#: The process-wide registry all instrumentation reports into.  It is a
#: single long-lived object (never rebound) so modules may cache it.
_GLOBAL = Telemetry(enabled=False)


def get_telemetry() -> Telemetry:
    """The process-wide telemetry registry (disabled by default)."""

    return _GLOBAL


def configure(enabled: bool = True) -> Telemetry:
    """Reset the process-wide registry and set its enablement."""

    _GLOBAL.reset()
    _GLOBAL.enabled = enabled
    return _GLOBAL


def telemetry_enabled() -> bool:
    return _GLOBAL.enabled


# Module-level conveniences routing to the process-wide registry -------
def span(name: str, category: str = "toolchain", **args: Any):
    if not _GLOBAL.enabled:
        return _NULL_SPAN
    return _Span(_GLOBAL, name, category, args)


def add(name: str, amount: float = 1.0) -> None:
    if _GLOBAL.enabled and amount:
        _GLOBAL.counters[name] = _GLOBAL.counters.get(name, 0.0) + amount


def set_gauge(name: str, value: float) -> None:
    if _GLOBAL.enabled:
        _GLOBAL.gauges[name] = float(value)


def max_gauge(name: str, value: float) -> None:
    if _GLOBAL.enabled:
        _GLOBAL.max_gauge(name, value)


def traced(name: Optional[str] = None, category: str = "toolchain") -> Callable:
    """Decorator timing a function through the process-wide registry.

    Enablement is checked at *call* time, so decorated functions keep
    the no-op fast path while telemetry is off.
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not _GLOBAL.enabled:
                return fn(*args, **kwargs)
            with _GLOBAL.span(span_name, category=category):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
