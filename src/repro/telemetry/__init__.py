"""Toolchain telemetry: spans, counters, gauges + exporters.

Observability for the toolchain *itself*, mirroring what the paper's
profiling unit does for the simulated hardware: the compile→simulate→
trace pipeline reports hierarchical wall-clock spans and cheap counters
into a process-wide registry, exportable as a summary table, a JSONL
metrics file, or a Chrome trace-event JSON (Perfetto /
``chrome://tracing``).

Typical use::

    from repro import telemetry

    session = telemetry.configure(enabled=True)
    ...  # compile / simulate / write traces
    print(telemetry.render_summary(session))
    telemetry.write_chrome_trace(session, "toolchain.json")

Instrumented code uses the module-level helpers, which no-op while the
registry is disabled (the default)::

    with telemetry.span("hls.schedule", category="hls"):
        ...
    telemetry.add("hls.loops.pipelined", len(loops))
"""

from .core import (
    SNAPSHOT_SCHEMA, SpanRecord, Telemetry, add, configure, get_telemetry,
    max_gauge, set_gauge, span, telemetry_enabled, traced,
)
from .exporters import (
    chrome_trace_events, export, read_jsonl, render_chrome_trace,
    render_summary, summarize_records, write_chrome_trace, write_jsonl,
)
from .merge import (
    merge_sweep_doc, merged_chrome_events, merged_chrome_payload,
    render_job_breakdown, render_merged_trace, snapshots_from_sweep_doc,
    write_merged_trace,
)

__all__ = [
    "SNAPSHOT_SCHEMA", "SpanRecord", "Telemetry", "add", "configure",
    "get_telemetry", "max_gauge", "set_gauge", "span", "telemetry_enabled",
    "traced",
    "chrome_trace_events", "export", "read_jsonl", "render_chrome_trace",
    "render_summary", "summarize_records", "write_chrome_trace",
    "write_jsonl",
    "merge_sweep_doc", "merged_chrome_events", "merged_chrome_payload",
    "render_job_breakdown", "render_merged_trace", "snapshots_from_sweep_doc",
    "write_merged_trace",
]
