"""Merging per-worker telemetry snapshots into one unified timeline.

A parallel sweep runs every job in its own process; each worker
captures its spans/counters/gauges into an isolated registry
(:meth:`Telemetry.capture`), snapshots it losslessly
(:meth:`Telemetry.snapshot`, schema ``repro.telemetry/1``) and ships
the snapshot back through the ``repro.sweep/1`` result envelope tagged
with the job id and worker pid.  This module folds those snapshots —
plus the parent session's own spans — into one Chrome-trace/Perfetto
file:

* each worker **process** becomes a Perfetto process track (real pid);
* each **job** becomes a thread track inside its worker's process
  (sequential jobs in one worker get distinct tids, so inline
  ``--jobs 1`` sweeps render one lane per job too);
* timelines are aligned on the shared wall clock: every snapshot
  records its ``wall_start`` (``time.time()`` at capture), so a span's
  merged timestamp is ``(wall_start - base) * 1e6 + start_us``.

The CLI front door is ``repro timeline <results.json>``; the per-job
phase breakdown table (:func:`render_job_breakdown`) also rides along
in ``render_summary`` output whenever a session holds job snapshots.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from .core import SNAPSHOT_SCHEMA

__all__ = [
    "merged_chrome_events", "merged_chrome_payload", "render_merged_trace",
    "write_merged_trace", "snapshots_from_sweep_doc", "merge_sweep_doc",
    "job_phase_breakdown", "render_job_breakdown",
]


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------
def _check_snapshot(snap: Any, where: str) -> dict:
    if not isinstance(snap, dict):
        raise ValueError(f"{where}: telemetry snapshot must be a dict, "
                         f"got {type(snap).__name__}")
    if snap.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(f"{where}: snapshot schema is "
                         f"{snap.get('schema')!r}, expected "
                         f"{SNAPSHOT_SCHEMA!r}")
    return snap


def merged_chrome_events(snapshots: Iterable[dict],
                         parent: Optional[dict] = None) -> list[dict]:
    """Chrome trace events for N worker snapshots (+ parent session).

    ``snapshots`` are :meth:`Telemetry.snapshot` dicts, each optionally
    tagged with ``job`` (job id), ``status`` and ``cache`` by the sweep
    runner.  ``parent`` is the dispatching session's own snapshot; its
    spans (the ``sweep`` umbrella, spec loading, result writing) land
    on a dedicated thread track.  Chrome ``pid`` is the snapshot's real
    OS pid; jobs that shared one process get consecutive ``tid``s.
    """

    jobs = [_check_snapshot(s, f"snapshot #{i}")
            for i, s in enumerate(snapshots)]
    if parent is not None:
        parent = _check_snapshot(parent, "parent snapshot")
    if not jobs and parent is None:
        raise ValueError("nothing to merge: no telemetry snapshots given")

    walls = [s["wall_start"] for s in jobs]
    if parent is not None:
        walls.append(parent["wall_start"])
    base_wall = min(walls)

    events: list[dict] = []
    next_tid: dict[int, int] = {}  # pid -> next free thread track

    def emit(snap: dict, tid: int, process_name: str,
             thread_name: str, umbrella: Optional[str]) -> None:
        pid = int(snap.get("pid", 0))
        offset_us = (snap["wall_start"] - base_wall) * 1e6
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": tid, "ts": 0, "args": {"name": process_name}})
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "ts": 0, "args": {"name": thread_name}})
        spans = sorted(snap.get("spans", []), key=lambda s: s["start_ns"])
        if umbrella is not None and spans:
            start = min(s["start_ns"] for s in spans)
            end = max(s["end_ns"] for s in spans)
            args = {"job": umbrella, "pid": pid}
            for key in ("status", "cache", "wall_s"):
                if snap.get(key) is not None:
                    args[key] = snap[key]
            events.append({"ph": "X", "name": umbrella, "cat": "sweep.job",
                           "ts": round(offset_us + start / 1e3, 3),
                           "dur": round((end - start) / 1e3, 3),
                           "pid": pid, "tid": tid, "args": args})
        for record in spans:
            event = {"ph": "X", "name": record["name"],
                     "cat": record.get("cat", "toolchain"),
                     "ts": round(offset_us + record["start_ns"] / 1e3, 3),
                     "dur": round((record["end_ns"]
                                   - record["start_ns"]) / 1e3, 3),
                     "pid": pid, "tid": tid}
            if record.get("args"):
                event["args"] = record["args"]
            events.append(event)

    if parent is not None:
        pid = int(parent.get("pid", 0))
        next_tid[pid] = 1
        emit(parent, 0, f"repro sweep (pid {pid})", "dispatcher", None)
    for index, snap in enumerate(jobs):
        pid = int(snap.get("pid", 0))
        tid = next_tid.get(pid, 1)
        next_tid[pid] = tid + 1
        job_id = str(snap.get("job") or f"job-{index}")
        emit(snap, tid, f"repro worker (pid {pid})", job_id, job_id)
    # Perfetto wants metadata first, then a monotone-ish event stream.
    meta = [e for e in events if e["ph"] == "M"]
    rest = sorted((e for e in events if e["ph"] != "M"),
                  key=lambda e: e["ts"])
    return meta + rest


def merged_chrome_payload(snapshots: Iterable[dict],
                          parent: Optional[dict] = None,
                          name: str = "sweep") -> dict:
    """The full Chrome-trace JSON document for a merged timeline."""

    snapshots = list(snapshots)
    pids = sorted({int(s.get("pid", 0)) for s in snapshots})
    return {
        "traceEvents": merged_chrome_events(snapshots, parent),
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro-telemetry-merge",
            "sweep": name,
            "jobs": len(snapshots),
            "worker_pids": pids,
        },
    }


def render_merged_trace(snapshots: Iterable[dict],
                        parent: Optional[dict] = None,
                        name: str = "sweep") -> str:
    return json.dumps(merged_chrome_payload(snapshots, parent, name),
                      indent=1, sort_keys=True, default=str)


def write_merged_trace(path: str, snapshots: Iterable[dict],
                       parent: Optional[dict] = None,
                       name: str = "sweep") -> None:
    with open(path, "w") as out:
        out.write(render_merged_trace(snapshots, parent, name) + "\n")


# ----------------------------------------------------------------------
# sweep result documents
# ----------------------------------------------------------------------
def snapshots_from_sweep_doc(doc: dict) -> tuple[list[dict],
                                                 Optional[dict]]:
    """(per-job snapshots, parent snapshot) from a ``repro.sweep/1`` doc.

    Raises ``ValueError`` when no job carries telemetry — the sweep was
    run by an older version or with capture explicitly disabled.
    """

    if not isinstance(doc, dict) or not isinstance(doc.get("jobs"), list):
        raise ValueError("expected a repro.sweep/1 result document with "
                         "a 'jobs' list")
    snapshots = []
    for index, job in enumerate(doc["jobs"]):
        snap = job.get("telemetry")
        if snap is None:
            continue
        snap = _check_snapshot(snap, f"jobs[{index}].telemetry")
        snap.setdefault("job", job.get("id", f"job-{index}"))
        snap.setdefault("status", job.get("status"))
        snap.setdefault("cache", job.get("compile_cache"))
        snapshots.append(snap)
    if not snapshots:
        raise ValueError(
            "no per-job telemetry in this sweep result; re-run the sweep "
            "with a repro version that captures worker telemetry "
            "(repro sweep ... --out results.json)")
    parent = doc.get("telemetry")
    if parent is not None:
        parent = _check_snapshot(parent, "telemetry")
    return snapshots, parent


def merge_sweep_doc(doc: dict) -> dict:
    """Merged Chrome-trace payload for a ``repro.sweep/1`` document."""

    snapshots, parent = snapshots_from_sweep_doc(doc)
    return merged_chrome_payload(snapshots, parent,
                                 name=str(doc.get("name", "sweep")))


# ----------------------------------------------------------------------
# per-job breakdown table
# ----------------------------------------------------------------------
def job_phase_breakdown(snap: dict) -> dict[str, float]:
    """Wall-ms attribution of one job snapshot to toolchain phases."""

    phases = snap.get("phases_ms", {})
    compile_ms = phases.get("frontend", 0.0) + phases.get("hls", 0.0)
    sim_ms = phases.get("sim", 0.0)
    trace_ms = phases.get("paraver", 0.0)
    total_ms = float(snap.get("wall_s", 0.0)) * 1e3
    if not total_ms:
        total_ms = sum(phases.values())
    other_ms = max(0.0, total_ms - compile_ms - sim_ms - trace_ms)
    return {"total_ms": total_ms, "compile_ms": compile_ms,
            "sim_ms": sim_ms, "trace_ms": trace_ms, "other_ms": other_ms}


def render_job_breakdown(snapshots: Iterable[dict],
                         slowest: int = 5) -> str:
    """Per-job toolchain breakdown table + slowest-job ranking.

    Columns separate compile time (frontend + HLS; near zero on a
    compile-cache hit) from simulate and trace-write time, so one look
    answers "where did this sweep's wall clock go, per job".
    """

    snapshots = list(snapshots)
    lines = ["per-job toolchain breakdown (wall ms)",
             f"{'job':34} {'status':>7} {'cache':>5} {'total':>9} "
             f"{'compile':>9} {'sim':>9} {'trace':>7}",
             "-" * 86]
    if not snapshots:
        # A sweep where every job failed still renders a stable table:
        # downstream log scrapers key on this line, not on its absence.
        lines.append("(no jobs)")
        return "\n".join(lines) + "\n"
    for snap in snapshots:
        parts = job_phase_breakdown(snap)
        job = str(snap.get("job", "?"))
        status = str(snap.get("status") or "?")
        cache = str(snap.get("cache") or "?")
        lines.append(
            f"{job:34} {status:>7} {cache:>5} {parts['total_ms']:9.1f} "
            f"{parts['compile_ms']:9.1f} {parts['sim_ms']:9.1f} "
            f"{parts['trace_ms']:7.1f}")
    ranked = sorted(snapshots,
                    key=lambda s: job_phase_breakdown(s)["total_ms"],
                    reverse=True)[:max(0, slowest)]
    if len(snapshots) > 1 and ranked:
        slowest_bits = ", ".join(
            f"{s.get('job', '?')} "
            f"({job_phase_breakdown(s)['total_ms'] / 1e3:.2f}s)"
            for s in ranked)
        lines += ["", f"slowest jobs: {slowest_bits}"]
    return "\n".join(lines) + "\n"
