"""Content-addressed compile cache for the HLS flow.

Running a variant sweep recompiles the same handful of sources with the
same macro sets over and over — once per job, and once per *worker
process* when the sweep fans out.  This module caches the expensive
part of :class:`~repro.core.program.Program` construction (lowering +
transforms + scheduling + area, i.e. the finished
:class:`~repro.hls.compiler.Accelerator`) keyed by everything that
determines its content:

* the mini-C source text,
* the macro set (``defines``) and synthesis constants (``const_env``),
* the :class:`~repro.hls.compiler.HLSOptions` (whose frozen-dataclass
  ``repr`` covers every schedule/profiling knob),
* the package version and cache format (so upgrades invalidate).

Entries are pickled accelerators under ``~/.cache/repro`` (override
with ``REPRO_CACHE_DIR`` or the ``directory`` argument), written
atomically (temp file + rename) so concurrent sweep workers can share
one cache directory without locks: the worst race is two workers
compiling the same key and one rename winning — both results are
identical by construction.

Corrupt, unreadable or version-mismatched entries are treated as
misses, never errors.  Hits/misses/stores are reported through
:mod:`repro.telemetry` (``compile_cache.hits`` / ``.misses`` /
``.stores``) and kept as plain counters on the cache object.

The cache is **opt-in**: nothing is read or written unless a
:class:`CompileCache` is passed to :class:`~repro.core.program.Program`
(or :func:`configure_cache` installs a process-wide default, or the
``REPRO_COMPILE_CACHE`` environment variable enables one).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import Mapping, Optional, Union

from .. import telemetry
from .compiler import Accelerator, HLSOptions

__all__ = [
    "CompileCache", "configure_cache", "get_default_cache", "resolve_cache",
    "default_cache_dir",
]

#: bump to invalidate every existing cache entry on format changes
_FORMAT = 1


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""

    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    if not xdg:
        xdg = os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(xdg, "repro")


class CompileCache:
    """On-disk + in-memory cache of compiled accelerators."""

    def __init__(self, directory: Optional[str] = None, *,
                 memory: bool = True):
        self.directory = directory or default_cache_dir()
        self._memory: Optional[dict[str, Accelerator]] = {} if memory else None
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def key(self, source: str,
            defines: Optional[Mapping[str, Union[int, float, str]]] = None,
            const_env: Optional[Mapping[str, int]] = None,
            options: Optional[HLSOptions] = None) -> str:
        """Content hash of everything that determines the accelerator."""

        from .. import __version__
        payload = json.dumps({
            "format": _FORMAT,
            "repro": __version__,
            "source": source,
            "defines": sorted((str(k), repr(v))
                              for k, v in (defines or {}).items()),
            "const_env": sorted((str(k), int(v))
                                for k, v in (const_env or {}).items()),
            "options": repr(options or HLSOptions()),
        }, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + ".pkl")

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[Accelerator]:
        """The cached accelerator for ``key``, or None (a miss)."""

        if self._memory is not None:
            cached = self._memory.get(key)
            if cached is not None:
                self.hits += 1
                telemetry.add("compile_cache.hits")
                return cached
        try:
            with open(self._path(key), "rb") as handle:
                accelerator = pickle.load(handle)
        except Exception:  # missing, corrupt, unpicklable: all misses
            self.misses += 1
            telemetry.add("compile_cache.misses")
            return None
        if not isinstance(accelerator, Accelerator):
            self.misses += 1
            telemetry.add("compile_cache.misses")
            return None
        if self._memory is not None:
            self._memory[key] = accelerator
        self.hits += 1
        telemetry.add("compile_cache.hits")
        return accelerator

    def store(self, key: str, accelerator: Accelerator) -> None:
        """Persist ``accelerator`` under ``key`` (atomic, best-effort)."""

        if self._memory is not None:
            self._memory[key] = accelerator
        path = self._path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(accelerator, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return  # read-only/full filesystem: cache silently disabled
        self.stores += 1
        telemetry.add("compile_cache.stores")

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}

    def __repr__(self) -> str:
        return (f"CompileCache({self.directory!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores})")


# ----------------------------------------------------------------------
# process-wide default (opt-in)
# ----------------------------------------------------------------------
_DEFAULT: Optional[CompileCache] = None
_ENV_CHECKED = False


def configure_cache(directory: Optional[str] = None,
                    enabled: bool = True) -> Optional[CompileCache]:
    """Install (or remove) the process-wide default compile cache."""

    global _DEFAULT, _ENV_CHECKED
    _ENV_CHECKED = True  # explicit configuration overrides the env var
    _DEFAULT = CompileCache(directory) if enabled else None
    return _DEFAULT


def get_default_cache() -> Optional[CompileCache]:
    """The process-wide cache; activates from ``REPRO_COMPILE_CACHE``.

    ``REPRO_COMPILE_CACHE=1`` enables the default directory; any other
    non-empty value that is not ``0``/``off`` is used as the directory.
    """

    global _DEFAULT, _ENV_CHECKED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        value = os.environ.get("REPRO_COMPILE_CACHE", "")
        if value and value not in ("0", "off", "false"):
            _DEFAULT = CompileCache(None if value == "1" else value)
    return _DEFAULT


def resolve_cache(explicit: Union[CompileCache, None, bool]
                  ) -> Optional[CompileCache]:
    """Resolve a caller's ``compile_cache`` argument.

    ``None`` means "use the process default (usually disabled)"; an
    explicit :class:`CompileCache` is used as-is; ``False`` forces the
    cache off even when a default is configured.
    """

    if explicit is False:
        return None
    if isinstance(explicit, CompileCache):
        return explicit
    return get_default_cache()
