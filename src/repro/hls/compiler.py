"""The top of the HLS flow: source/IR -> scheduled, characterized accelerator.

:class:`HLSCompiler` bundles the pass pipeline (unroll, simplify, DCE),
the static scheduler, the dependence analysis and the area/timing model
into a single entry point, and produces an :class:`Accelerator` object
that the simulator (:mod:`repro.sim`) can execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from .. import telemetry
from ..frontend import compile_to_kernel
from ..ir.graph import Kernel
from ..ir.validate import validate_kernel
from ..profiling.config import ProfilingConfig
from .area import AreaReport, estimate_area
from .schedule import KernelSchedule, ScheduleOptions, schedule_kernel
from .transforms import run_pipeline

__all__ = ["HLSOptions", "Accelerator", "HLSCompiler", "compile_source"]


@dataclass(frozen=True)
class HLSOptions:
    """All knobs of the HLS flow."""

    schedule: ScheduleOptions = field(default_factory=ScheduleOptions)
    profiling: ProfilingConfig = field(default_factory=ProfilingConfig)
    run_transforms: bool = True


@dataclass
class Accelerator:
    """A compiled accelerator: schedule + resource reports.

    ``area`` is the design as built (with the profiling unit if enabled);
    ``baseline_area`` is the same accelerator with the profiling unit
    stripped, so overheads (§V-B) can be reported as
    ``area.overhead_vs(baseline_area)``.
    """

    kernel: Kernel
    schedule: KernelSchedule
    options: HLSOptions
    area: AreaReport
    baseline_area: AreaReport
    transform_stats: dict[str, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def num_threads(self) -> int:
        return self.kernel.num_threads

    def profiling_overhead(self) -> dict[str, float]:
        """Registers/ALMs/Fmax overhead of the profiling infrastructure."""

        return self.area.overhead_vs(self.baseline_area)


class HLSCompiler:
    """Compiles IR kernels (or mini-C sources) into accelerators."""

    def __init__(self, options: Optional[HLSOptions] = None):
        self.options = options or HLSOptions()

    def compile(self, kernel: Kernel) -> Accelerator:
        """Compile an IR kernel (mutates it: transforms run in place)."""

        with telemetry.span("hls", category="hls", kernel=kernel.name):
            stats: dict[str, int] = {}
            if self.options.run_transforms:
                with telemetry.span("hls.transforms", category="hls"):
                    stats = run_pipeline(kernel)
                for pass_name, count in stats.items():
                    telemetry.add(f"hls.transform.{pass_name}", count)
            with telemetry.span("hls.validate", category="hls"):
                validate_kernel(kernel)
            with telemetry.span("hls.schedule", category="hls"):
                schedule = schedule_kernel(kernel, self.options.schedule)
            self._record_schedule_telemetry(schedule)
            with telemetry.span("hls.area", category="hls"):
                area = estimate_area(schedule, self.options.profiling)
                baseline = estimate_area(schedule,
                                         ProfilingConfig.disabled())
            telemetry.set_gauge("hls.fmax_mhz", area.fmax_mhz)
            return Accelerator(kernel, schedule, self.options, area,
                               baseline, stats)

    @staticmethod
    def _record_schedule_telemetry(schedule: KernelSchedule) -> None:
        if not telemetry.telemetry_enabled():
            return
        loops = list(schedule.body.walk_loops())
        pipelined = [loop for loop in loops if loop.pipelined]
        telemetry.add("hls.loops.scheduled", len(loops))
        telemetry.add("hls.loops.pipelined", len(pipelined))
        telemetry.add("hls.stages", schedule.total_stages)
        telemetry.add("hls.stages.reordering", schedule.reordering_stages)
        if pipelined:
            telemetry.set_gauge("hls.ii.best",
                                min(loop.ii for loop in pipelined))
            telemetry.set_gauge("hls.ii.worst",
                                max(loop.ii for loop in pipelined))

    def compile_source(self, source: str,
                       defines: Optional[Mapping[str, Union[int, float, str]]] = None,
                       const_env: Optional[Mapping[str, int]] = None,
                       filename: str = "<source>") -> Accelerator:
        """Frontend + HLS in one call."""

        kernel = compile_to_kernel(source, filename=filename, defines=defines,
                                   const_env=const_env)
        return self.compile(kernel)


def compile_source(source: str,
                   defines: Optional[Mapping[str, Union[int, float, str]]] = None,
                   const_env: Optional[Mapping[str, int]] = None,
                   options: Optional[HLSOptions] = None) -> Accelerator:
    """Convenience wrapper: mini-C source -> accelerator."""

    return HLSCompiler(options).compile_source(source, defines=defines,
                                               const_env=const_env)
