"""Memory access collection and dependence testing.

A lightweight abstract interpreter walks the kernel in program order and
computes, for every ``load``/``store``, a symbolic :class:`Affine` index
expression (see :mod:`repro.hls.symexpr`).  The scheduler then asks
whether two program regions may touch the same memory through
:func:`conflicts`.

Aliasing assumptions match the OpenMP offloading model the paper uses:
distinct mapped pointers refer to distinct device buffers, and local
(BRAM) arrays are distinct storage by construction.  Within one array,
accesses conflict unless the affine difference of their index windows
provably excludes overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..ir.graph import Block, Kernel, Operation, Value
from ..ir.ops import Opcode
from ..ir.types import VectorType
from .symexpr import Affine, Interval, Sym, difference_excludes, fresh_opaque

__all__ = ["Access", "AccessMap", "collect_accesses", "conflicts",
           "ops_conflict"]


@dataclass(frozen=True)
class Access:
    """One memory access with its symbolic index.

    ``width`` is the number of consecutive elements touched (vector
    accesses move ``lanes`` elements).
    """

    base: int  # Value.id of the base pointer
    base_name: str
    index: Affine
    width: int
    is_write: bool

    def overlaps(self, other: "Access") -> bool:
        """May the two element windows intersect?  (Same base assumed.)

        Windows ``[a, a+wa-1]`` and ``[b, b+wb-1]`` intersect iff
        ``-(wa-1) <= a-b <= wb-1``.
        """

        window = Interval(-(self.width - 1), other.width - 1)
        return not difference_excludes(self.index, other.index, window)


#: Mapping from ``id(op)`` of each memory op to its Access records
#: (loads/stores have one; preloads have a local write + external read).
AccessMap = dict[int, tuple[Access, ...]]


def collect_accesses(kernel: Kernel) -> AccessMap:
    """Run the abstract interpreter over ``kernel`` and index every access."""

    interp = _AbstractInterp(kernel)
    interp.run_block(kernel.body)
    return interp.accesses


class _AbstractInterp:
    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.values: dict[int, Affine] = {}   # Value.id -> Affine
        self.vars: dict[int, Affine] = {}     # var handle id -> Affine
        self.var_versions: dict[int, int] = {}
        self.accesses: AccessMap = {}
        self.tid_sym = Sym("tid", ("tid",), Interval(0, kernel.num_threads - 1))

    # ------------------------------------------------------------------
    def value_of(self, value: Value) -> Affine:
        affine = self.values.get(value.id)
        if affine is None:
            affine = Affine.symbol(Sym("opaque", ("value", value.id)))
            self.values[value.id] = affine
        return affine

    def _var_symbol(self, var_id: int) -> Affine:
        version = self.var_versions.get(var_id, 0)
        return Affine.symbol(Sym("var", ("var", var_id, version)))

    def invalidate_var(self, var_id: int) -> None:
        self.var_versions[var_id] = self.var_versions.get(var_id, 0) + 1
        self.vars[var_id] = self._var_symbol(var_id)

    # ------------------------------------------------------------------
    def run_block(self, block: Block) -> None:
        for op in block.ops:
            self.run_op(op)

    def run_op(self, op: Operation) -> None:
        code = op.opcode
        if code is Opcode.CONST:
            value = op.attrs["value"]
            if isinstance(value, int):
                self._set(op, Affine.constant(value))
            else:
                self._set(op, Affine.symbol(fresh_opaque()))
        elif code is Opcode.THREAD_ID:
            self._set(op, Affine.symbol(self.tid_sym))
        elif code is Opcode.NUM_THREADS:
            self._set(op, Affine.constant(self.kernel.num_threads))
        elif code in (Opcode.ADD, Opcode.SUB):
            a = self.value_of(op.operands[0])
            b = self.value_of(op.operands[1])
            self._set(op, a + b if code is Opcode.ADD else a - b)
        elif code is Opcode.MUL:
            a = self.value_of(op.operands[0])
            b = self.value_of(op.operands[1])
            if b.is_constant:
                self._set(op, a.scale(b.const))
            elif a.is_constant:
                self._set(op, b.scale(a.const))
            else:
                self._set(op, Affine.symbol(fresh_opaque()))
        elif code is Opcode.DIV:
            a = self.value_of(op.operands[0])
            b = self.value_of(op.operands[1])
            self._set(op, a.div(b.const) if b.is_constant
                      else Affine.symbol(fresh_opaque()))
        elif code is Opcode.REM:
            a = self.value_of(op.operands[0])
            b = self.value_of(op.operands[1])
            self._set(op, a.mod(b.const) if b.is_constant
                      else Affine.symbol(fresh_opaque()))
        elif code is Opcode.SHL:
            a = self.value_of(op.operands[0])
            b = self.value_of(op.operands[1])
            self._set(op, a.scale(2 ** b.const)
                      if b.is_constant and 0 <= b.const < 31
                      else Affine.symbol(fresh_opaque()))
        elif code is Opcode.CAST:
            self._set(op, self.value_of(op.operands[0]))
        elif code is Opcode.READ_VAR:
            var_id = op.operands[0].id
            affine = self.vars.get(var_id)
            if affine is None:
                affine = self._var_symbol(var_id)
                self.vars[var_id] = affine
            self._set(op, affine)
        elif code is Opcode.WRITE_VAR:
            var_id = op.operands[0].id
            self.var_versions[var_id] = self.var_versions.get(var_id, 0) + 1
            self.vars[var_id] = self.value_of(op.operands[1])
        elif code in (Opcode.LOAD, Opcode.STORE):
            self._record_access(op)
        elif code is Opcode.PRELOAD:
            self._record_preload(op)
        elif code is Opcode.FOR:
            self._run_for(op)
        elif code is Opcode.IF:
            self._run_if(op)
        elif code is Opcode.CRITICAL:
            written = _written_vars(op.regions[0])
            self.run_block(op.regions[0])
            for var_id in written:
                self.invalidate_var(var_id)
        elif op.result is not None:
            self._set(op, Affine.symbol(fresh_opaque()))

    def _set(self, op: Operation, affine: Affine) -> None:
        if op.result is not None:
            self.values[op.result.id] = affine

    def _record_access(self, op: Operation) -> None:
        base = op.operands[0]
        index = self.value_of(op.operands[1])
        if op.opcode is Opcode.LOAD:
            ty = op.result.type if op.result is not None else None
            is_write = False
        else:
            ty = op.operands[2].type
            is_write = True
        width = ty.lanes if isinstance(ty, VectorType) else 1
        self.accesses[id(op)] = (Access(base.id, base.name, index, width,
                                        is_write),)

    def _record_preload(self, op: Operation) -> None:
        dst, src = op.operands[0], op.operands[2]
        dst_off = self.value_of(op.operands[1])
        src_off = self.value_of(op.operands[3])
        count = self.value_of(op.operands[4])
        # conservative width: the constant count, else "anything"
        width = count.const if count.is_constant else (1 << 30)
        self.accesses[id(op)] = (
            Access(dst.id, dst.name, dst_off, max(1, width), True),
            Access(src.id, src.name, src_off, max(1, width), False),
        )

    def _run_for(self, op: Operation) -> None:
        lower = self.value_of(op.operands[0])
        upper = self.value_of(op.operands[1])
        step = self.value_of(op.operands[2])
        iv_range = Interval()
        if lower.is_constant and upper.is_constant:
            hi = max(lower.const, upper.const - 1)
            if step.is_constant and step.const > 0 and upper.const > lower.const:
                # last value actually taken, given the step
                trips = (upper.const - 1 - lower.const) // step.const
                hi = lower.const + trips * step.const
            iv_range = Interval(lower.const, hi)
        iv_sym = Sym("iv", ("iv", id(op)), iv_range)
        iv = op.defined[0]
        self.values[iv.id] = Affine.symbol(iv_sym)
        # Loop-carried register values are unknown inside and after the body.
        written = _written_vars(op.regions[0])
        for var_id in written:
            self.invalidate_var(var_id)
        self.run_block(op.regions[0])
        for var_id in written:
            self.invalidate_var(var_id)
        _ = step  # step only matters for range refinement, kept conservative

    def _run_if(self, op: Operation) -> None:
        written: set[int] = set()
        for region in op.regions:
            written |= _written_vars(region)
            snapshot = dict(self.vars)
            self.run_block(region)
            self.vars = snapshot
        for var_id in written:
            self.invalidate_var(var_id)


def _written_vars(block: Block) -> set[int]:
    return {op.operands[0].id for op in block.walk()
            if op.opcode is Opcode.WRITE_VAR}


# ----------------------------------------------------------------------
# conflict tests
# ----------------------------------------------------------------------
def _accesses_of(ops: Iterable[Operation], amap: AccessMap) -> list[Access]:
    out: list[Access] = []
    for op in ops:
        for inner in op.walk():
            accesses = amap.get(id(inner))
            if accesses:
                out.extend(accesses)
    return out


def ops_conflict(a: Operation, b: Operation, amap: AccessMap) -> bool:
    """May regions ``a`` and ``b`` (including nested ops) touch common memory
    with at least one write?"""

    return conflicts(_accesses_of([a], amap), _accesses_of([b], amap))


def conflicts(left: list[Access], right: list[Access]) -> bool:
    """Pairwise conflict test between two access sets."""

    for la in left:
        for ra in right:
            if la.base != ra.base:
                continue
            if not (la.is_write or ra.is_write):
                continue
            if la.overlaps(ra):
                return True
    return False


def may_share_storage(left: list[Access], right: list[Access]) -> bool:
    """May the two sets touch the same memory words at all (ignoring
    read/write direction)?  Used for BRAM port-partitioning decisions:
    provably disjoint regions (ping-pong buffer halves) map to separate
    banks and do not contend for ports."""

    for la in left:
        for ra in right:
            if la.base == ra.base and la.overlaps(ra):
                return True
    return False
