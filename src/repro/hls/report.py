"""Human-readable compile reports for accelerators.

Mirrors the reporting a developer gets from an HLS tool: per-loop
initiation intervals and depths, stage counts, variable-latency
operation inventory, the area breakdown and the profiling unit's
footprint — the compile-time half of the paper's methodology (§IV/§V-B).
"""

from __future__ import annotations

from io import StringIO
from typing import Optional

from ..ir.graph import Operation
from ..ir.ops import Opcode
from .compiler import Accelerator
from .schedule import (
    BarrierNode, BodySchedule, CriticalNode, IfNode, Item, LoopNode, Segment,
)

__all__ = ["compile_report", "schedule_tree"]


def compile_report(acc: Accelerator) -> str:
    """Render the full compile report for ``acc``."""

    out = StringIO()
    kernel = acc.kernel
    out.write(f"=== HLS compile report: {kernel.name} ===\n")
    out.write(f"hardware threads : {kernel.num_threads}\n")
    params = ", ".join(
        f"{p.name}({p.map_kind or 'value'}"
        f"{':' + str(p.map_size) if p.map_size is not None else ''})"
        for p in kernel.params)
    out.write(f"parameters       : {params}\n")
    if acc.transform_stats:
        out.write(f"transforms       : {acc.transform_stats}\n")

    schedule = acc.schedule
    out.write(f"pipeline stages  : {schedule.total_stages} total, "
              f"{schedule.reordering_stages} reordering (thread contexts "
              "buffered)\n")

    loops = list(schedule.body.walk_loops())
    if loops:
        out.write("\nloops:\n")
        out.write(f"  {'name':10s} {'kind':10s} {'II':>4s} {'rec-II':>7s} "
                  f"{'depth':>6s}\n")
        for loop in loops:
            kind = "pipelined" if loop.pipelined else "sequential"
            out.write(f"  {loop.op.attrs.get('name', '?'):10s} {kind:10s} "
                      f"{loop.ii:4d} {loop.rec_ii:7d} {loop.depth:6d}\n")

    vlos = _count_vlos(schedule.body)
    out.write("\nvariable-latency operations:\n")
    for name, count in sorted(vlos.items()):
        out.write(f"  {name:18s} {count:4d}\n")

    groups: dict[int, int] = {}
    for group in schedule.local_groups.values():
        groups[group] = groups.get(group, 0) + 1
    if groups:
        out.write(f"\nlocal-memory conflict groups: {len(groups)} "
                  f"({', '.join(str(n) + ' segs' for n in groups.values())})\n")

    breakdown = acc.area.breakdown
    out.write("\narea estimate (post-P&R model):\n")
    out.write(f"  registers: {acc.area.registers:8d}   "
              f"(operators {breakdown.operator_registers}, pipeline "
              f"{breakdown.pipeline_registers}, contexts "
              f"{breakdown.context_registers}, infra "
              f"{breakdown.infra_registers}, profiling "
              f"{breakdown.profiling_registers})\n")
    out.write(f"  ALMs:      {acc.area.alms:8d}   "
              f"(operators {breakdown.operator_alms}, infra "
              f"{breakdown.infra_alms}, profiling "
              f"{breakdown.profiling_alms})\n")
    out.write(f"  Fmax:      {acc.area.fmax_mhz:8.1f} MHz\n")

    if acc.options.profiling.enabled:
        overhead = acc.profiling_overhead()
        out.write("\nprofiling unit (vs profiling-free baseline):\n")
        out.write(f"  +{overhead['registers_pct']:.2f}% registers, "
                  f"+{overhead['alms_pct']:.2f}% ALMs, "
                  f"-{overhead['fmax_delta_mhz']:.1f} MHz\n")
    else:
        out.write("\nprofiling unit: disabled\n")

    out.write("\nschedule tree:\n")
    out.write(schedule_tree(schedule.body, indent=1))
    return out.getvalue()


def schedule_tree(body: BodySchedule, indent: int = 0) -> str:
    """Indented rendering of the item tree with dependences."""

    out = StringIO()
    pad = "  " * indent
    for index, item in enumerate(body.items):
        deps = body.deps[index] if index < len(body.deps) else []
        dep_str = f" after {deps}" if deps else ""
        out.write(pad + f"[{index}] {_item_label(item)}{dep_str}\n")
        for child in _children(item):
            out.write(schedule_tree(child, indent + 1))
    return out.getvalue()


def _item_label(item: Item) -> str:
    if isinstance(item, Segment):
        mems = len(item.mem_ops)
        return (f"segment depth={item.depth} flops={item.flops} "
                f"intops={item.intops} ext-mem={mems}")
    if isinstance(item, LoopNode):
        kind = "pipelined" if item.pipelined else "sequential"
        return (f"for {item.op.attrs.get('name', '?')} ({kind}, "
                f"II={item.ii}, rec-II={item.rec_ii}, depth={item.depth})")
    if isinstance(item, IfNode):
        return f"if ({len(item.branches)} branch(es))"
    if isinstance(item, CriticalNode):
        return f"critical lock={item.lock}"
    if isinstance(item, BarrierNode):
        return "barrier"
    return type(item).__name__  # pragma: no cover


def _children(item: Item) -> list[BodySchedule]:
    if isinstance(item, LoopNode):
        return [item.body]
    if isinstance(item, IfNode):
        return item.branches
    if isinstance(item, CriticalNode):
        return [item.body]
    return []


def _count_vlos(body: BodySchedule) -> dict[str, int]:
    counts: dict[str, int] = {}

    def bump(name: str) -> None:
        counts[name] = counts.get(name, 0) + 1

    for segment in body.walk_segments():
        for sched in segment.sched_ops:
            op = sched.op
            if op.opcode in (Opcode.LOAD, Opcode.STORE) and op.is_vlo:
                bump("external " + op.opcode.value)
    for loop in body.walk_loops():
        bump("inner loop" if loop.pipelined else "outer loop")
    counts.pop("outer loop", None)
    return counts
