"""Static scheduling of kernels into pipelined stages (the Nymble model).

The scheduler turns each block of the IR into a :class:`BodySchedule`:

* consecutive simple operations form :class:`Segment` items, scheduled
  ASAP into pipeline stages assuming the *minimum* delay of every
  variable-latency operation (§III-B: "At synthesis time, the scheduler
  assumes the expected minimum delay for VLOs");
* nested loops, conditionals and critical sections become structured
  items embedded as single variable-latency nodes;
* a dependence DAG over the items is computed from value uses, register
  (variable) access order, and the memory disambiguation of
  :mod:`repro.hls.depanalysis` — items without a path between them may
  execute concurrently (this is what overlaps the double-buffered GEMM's
  prefetch with its compute, Fig. 9);
* loops whose body is a single segment are *pipelined leaves*: they get
  an initiation interval (II) from operator/port contention and from
  loop-carried register recurrences.

Stage classification follows §III-B: stages containing VLOs become
*reordering stages* (their thread contexts must be buffered for all
threads, which the area model charges for); stages between them form
static regions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Union

from ..ir.graph import Block, Kernel, Operation, Value
from ..ir.ops import Opcode
from ..ir.types import MemorySpace, PointerType, ScalarType, Type, VectorType
from .depanalysis import (Access, AccessMap, collect_accesses, conflicts,
                          may_share_storage)

__all__ = [
    "ScheduleOptions", "ScheduledOp", "MemOp", "Segment", "LoopNode",
    "IfNode", "CriticalNode", "BarrierNode", "Item", "BodySchedule",
    "KernelSchedule", "schedule_kernel",
]


@dataclass(frozen=True)
class ScheduleOptions:
    """Latency assumptions used at synthesis time."""

    #: scheduled (minimum) latency of an external-memory read
    ext_read_latency: int = 8
    #: scheduled (minimum) latency of an external-memory write (posted)
    ext_write_latency: int = 2
    #: BRAM access latencies (fixed; local accesses are not VLOs)
    bram_read_latency: int = 2
    bram_write_latency: int = 1
    #: scheduled (minimum) latency of acquiring an uncontended semaphore
    critical_latency: int = 4
    #: access slots per local memory per cycle = ports * banks.  The
    #: defaults are calibrated so the blocked GEMM's compute throughput
    #: sits in the paper's measured band relative to the naive version.
    bram_ports: int = 1
    #: cyclic banking factor applied to local arrays (HLS array partitioning)
    bram_banks: int = 1
    #: external read/write ports per hardware thread (§IV-B.2c: all memory
    #: operations multiplex to one Avalon read and one write port per thread)
    ext_read_ports: int = 1
    ext_write_ports: int = 1


# ----------------------------------------------------------------------
# scheduled items
# ----------------------------------------------------------------------
@dataclass
class ScheduledOp:
    op: Operation
    start: int
    latency: int

    @property
    def end(self) -> int:
        return self.start + self.latency


@dataclass
class MemOp:
    """An external-memory access inside a segment, for the simulator."""

    op: Operation
    start: int          # stage offset within the segment
    sched_latency: int  # latency the static schedule assumed
    is_write: bool
    bytes: int


@dataclass
class Segment:
    """A straight-line group of ops scheduled into pipeline stages."""

    sched_ops: list[ScheduledOp]
    #: stable index in walk_segments() order, assigned once the whole
    #: kernel is scheduled; keys local_groups/local_costs so the
    #: mapping survives pickling (id() does not)
    uid: int = -1
    depth: int = 0
    flops: int = 0
    intops: int = 0
    mem_ops: list[MemOp] = field(default_factory=list)
    bram_reads: int = 0
    bram_writes: int = 0
    #: FF bit-cycles of pipeline registers (for the area model)
    live_bits: int = 0
    #: bits of thread context crossing VLO stages (reordering storage)
    context_bits: int = 0
    #: stages that contain at least one VLO
    vlo_stages: int = 0

    @property
    def ops(self) -> list[Operation]:
        return [s.op for s in self.sched_ops]


@dataclass
class LoopNode:
    """A scheduled loop.

    ``ii`` is the *hardware* initiation interval (operator/port
    contention): the loop datapath accepts one new iteration — from any
    thread — every ``ii`` cycles.  ``rec_ii`` is the *per-thread*
    recurrence interval: iterations of the *same* thread must be at
    least ``rec_ii`` cycles apart (loop-carried register dependences).
    Interleaving threads hides recurrences, the C-slow effect of §III-B.
    """

    op: Operation
    body: "BodySchedule"
    pipelined: bool
    ii: int = 1
    rec_ii: int = 1
    depth: int = 1
    #: stable index in walk_loops() order (like :attr:`Segment.uid`);
    #: keys per-simulation caches so they survive pickle round-trips
    uid: int = -1


@dataclass
class IfNode:
    op: Operation
    branches: list["BodySchedule"]


@dataclass
class CriticalNode:
    op: Operation
    lock: int
    body: "BodySchedule"


@dataclass
class BarrierNode:
    op: Operation


Item = Union[Segment, LoopNode, IfNode, CriticalNode, BarrierNode]


@dataclass
class BodySchedule:
    """A scheduled block: items plus their dependence DAG.

    ``deps[i]`` lists the indices of items that must complete before
    item ``i`` may start.  Items with no path between them may run
    concurrently (dataflow execution).
    """

    items: list[Item] = field(default_factory=list)
    deps: list[list[int]] = field(default_factory=list)

    def walk_segments(self):
        for item in self.items:
            if isinstance(item, Segment):
                yield item
            elif isinstance(item, LoopNode):
                yield from item.body.walk_segments()
            elif isinstance(item, IfNode):
                for branch in item.branches:
                    yield from branch.walk_segments()
            elif isinstance(item, CriticalNode):
                yield from item.body.walk_segments()

    def walk_loops(self):
        for item in self.items:
            if isinstance(item, LoopNode):
                yield item
                yield from item.body.walk_loops()
            elif isinstance(item, IfNode):
                for branch in item.branches:
                    yield from branch.walk_loops()
            elif isinstance(item, CriticalNode):
                yield from item.body.walk_loops()


@dataclass
class KernelSchedule:
    kernel: Kernel
    body: BodySchedule
    accesses: AccessMap
    options: ScheduleOptions
    #: segment.uid -> local-memory conflict group id.  Segments whose
    #: local-array accesses may touch the same BRAM words share the
    #: memory's ports and therefore serialize globally; segments proven
    #: disjoint (ping-pong buffers) get distinct groups and may overlap.
    local_groups: dict[int, int] = field(default_factory=dict)
    #: segment.uid -> port-cycles one iteration occupies on its group
    local_costs: dict[int, int] = field(default_factory=dict)

    # -- aggregate statistics (for reports and the area model) ---------
    @property
    def total_stages(self) -> int:
        return sum(max(1, seg.depth) for seg in self.body.walk_segments())

    @property
    def reordering_stages(self) -> int:
        return sum(seg.vlo_stages for seg in self.body.walk_segments())

    @property
    def pipelined_loops(self) -> list[LoopNode]:
        return [loop for loop in self.body.walk_loops() if loop.pipelined]


def schedule_kernel(kernel: Kernel,
                    options: Optional[ScheduleOptions] = None) -> KernelSchedule:
    """Compute the static schedule for ``kernel``."""

    from .. import telemetry

    options = options or ScheduleOptions()
    with telemetry.span("hls.schedule.depanalysis", category="hls"):
        accesses = collect_accesses(kernel)
    scheduler = _Scheduler(kernel, accesses, options)
    with telemetry.span("hls.schedule.pipeline", category="hls"):
        body = scheduler.schedule_block(kernel.body)
    schedule = KernelSchedule(kernel, body, accesses, options)
    with telemetry.span("hls.schedule.local_groups", category="hls"):
        _assign_local_groups(schedule)
    return schedule


def _assign_local_groups(schedule: KernelSchedule) -> None:
    """Partition segments into local-memory conflict groups.

    All segments touching local (BRAM) arrays start in singleton groups;
    groups are merged whenever two segments' local access sets *may*
    overlap per the dependence analysis.  Double-buffered code whose
    ping-pong halves are proven disjoint stays in separate groups, which
    is what lets its prefetch overlap its compute at runtime (Fig. 9),
    while a plain blocked kernel's load and compute phases share one
    group and serialize on the BRAM ports (Fig. 8).
    """

    opts = schedule.options
    segments = list(schedule.body.walk_segments())
    for index, segment in enumerate(segments):
        segment.uid = index
    for index, loop in enumerate(schedule.body.walk_loops()):
        loop.uid = index
    local_accesses: list[list[Access]] = []
    for segment in segments:
        acc = []
        counts: dict[int, int] = {}
        for sched in segment.sched_ops:
            op = sched.op
            if op.opcode in (Opcode.LOAD, Opcode.STORE, Opcode.PRELOAD):
                base = op.operands[0]
                if isinstance(base.type, PointerType) \
                        and base.type.space is MemorySpace.LOCAL:
                    for access in schedule.accesses.get(id(op), ()):
                        if access.base == base.id:
                            acc.append(access)
                    counts[base.id] = counts.get(base.id, 0) + 1
        local_accesses.append(acc)
        ports = max(1, opts.bram_ports * max(1, opts.bram_banks))
        cost = 0
        for count in counts.values():
            cost = max(cost, -(-count // ports))
        schedule.local_costs[segment.uid] = cost

    parent = list(range(len(segments)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(len(segments)):
        if not local_accesses[i]:
            continue
        for j in range(i + 1, len(segments)):
            if not local_accesses[j]:
                continue
            if may_share_storage(local_accesses[i], local_accesses[j]):
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[rj] = ri
    for index, segment in enumerate(segments):
        if local_accesses[index]:
            schedule.local_groups[segment.uid] = find(index)


_STRUCTURED = {Opcode.FOR, Opcode.IF, Opcode.CRITICAL, Opcode.BARRIER}


class _Scheduler:
    def __init__(self, kernel: Kernel, accesses: AccessMap,
                 options: ScheduleOptions):
        self.kernel = kernel
        self.accesses = accesses
        self.options = options

    # ------------------------------------------------------------------
    def schedule_block(self, block: Block) -> BodySchedule:
        items: list[Item] = []
        run: list[Operation] = []
        for op in block.ops:
            if op.opcode in _STRUCTURED:
                if run:
                    items.append(self._schedule_segment(run))
                    run = []
                items.append(self._schedule_structured(op))
            else:
                run.append(op)
        if run:
            items.append(self._schedule_segment(run))
        deps = self._item_deps(items)
        return BodySchedule(items, deps)

    def _schedule_structured(self, op: Operation) -> Item:
        if op.opcode is Opcode.FOR:
            return self._schedule_loop(op)
        if op.opcode is Opcode.IF:
            return IfNode(op, [self.schedule_block(r) for r in op.regions])
        if op.opcode is Opcode.CRITICAL:
            return CriticalNode(op, op.attrs.get("lock", 0),
                                self.schedule_block(op.regions[0]))
        if op.opcode is Opcode.BARRIER:
            return BarrierNode(op)
        raise AssertionError(op.opcode)

    # ------------------------------------------------------------------
    # loops
    # ------------------------------------------------------------------
    def _schedule_loop(self, op: Operation) -> LoopNode:
        body_block = op.regions[0]
        leaf = all(inner.opcode not in _STRUCTURED for inner in body_block.ops)
        body = self.schedule_block(body_block)
        if not leaf:
            return LoopNode(op, body, pipelined=False)
        assert len(body.items) <= 1
        if not body.items:
            return LoopNode(op, body, pipelined=True, ii=1, depth=1)
        segment = body.items[0]
        assert isinstance(segment, Segment)
        ii = self._resource_ii(segment)
        rec_ii = self._recurrence_ii(segment)
        return LoopNode(op, body, pipelined=True, ii=ii, rec_ii=rec_ii,
                        depth=max(1, segment.depth))

    def _resource_ii(self, segment: Segment) -> int:
        opts = self.options
        ext_reads = sum(1 for m in segment.mem_ops if not m.is_write)
        ext_writes = sum(1 for m in segment.mem_ops if m.is_write)
        ii = max(
            1,
            math.ceil(ext_reads / opts.ext_read_ports),
            math.ceil(ext_writes / opts.ext_write_ports),
        )
        # Local-memory port contention, per array (cyclic banking assumed).
        per_array: dict[int, int] = {}
        for sched in segment.sched_ops:
            if sched.op.opcode in (Opcode.LOAD, Opcode.STORE):
                base = sched.op.operands[0]
                if isinstance(base.type, PointerType) \
                        and base.type.space is MemorySpace.LOCAL:
                    per_array[base.id] = per_array.get(base.id, 0) + 1
        ports = opts.bram_ports * max(1, opts.bram_banks)
        for count in per_array.values():
            ii = max(ii, math.ceil(count / ports))
        return ii

    def _recurrence_ii(self, segment: Segment) -> int:
        """Longest dependence path from an upward-exposed variable read to a
        write of the same variable (cycle length of the loop-carried
        recurrence; the distance is always 1 iteration)."""

        first_touch: dict[int, Opcode] = {}
        for sched in segment.sched_ops:
            code = sched.op.opcode
            if code in (Opcode.READ_VAR, Opcode.WRITE_VAR):
                first_touch.setdefault(sched.op.operands[0].id, code)
        carried = {var_id for var_id, code in first_touch.items()
                   if code is Opcode.READ_VAR}
        if not carried:
            return 1

        ii = 1
        producers: dict[int, ScheduledOp] = {}
        for sched in segment.sched_ops:
            if sched.op.result is not None:
                producers[sched.op.result.id] = sched
        for var_id in carried:
            # longest-path DP from every read of this var, in program order
            dist: dict[int, int] = {}  # id(op) -> path cycles up to op start
            for sched in segment.sched_ops:
                op = sched.op
                if op.opcode is Opcode.READ_VAR and op.operands[0].id == var_id:
                    dist[id(op)] = 0
                    continue
                best = None
                for operand in op.operands:
                    producer = producers.get(operand.id)
                    if producer is not None and id(producer.op) in dist:
                        cand = dist[id(producer.op)] + producer.latency
                        best = cand if best is None else max(best, cand)
                if best is not None:
                    dist[id(op)] = best
                if op.opcode is Opcode.WRITE_VAR and op.operands[0].id == var_id \
                        and id(op) in dist:
                    ii = max(ii, dist[id(op)] + sched.latency)
        return ii

    # ------------------------------------------------------------------
    # segments
    # ------------------------------------------------------------------
    def op_latency(self, op: Operation) -> int:
        info = op.info
        if op.opcode is Opcode.LOAD:
            base = op.operands[0]
            assert isinstance(base.type, PointerType)
            if base.type.space is MemorySpace.LOCAL:
                return self.options.bram_read_latency
            return self.options.ext_read_latency
        if op.opcode is Opcode.STORE:
            base = op.operands[0]
            assert isinstance(base.type, PointerType)
            if base.type.space is MemorySpace.LOCAL:
                return self.options.bram_write_latency
            return self.options.ext_write_latency
        if op.opcode is Opcode.CRITICAL:
            return self.options.critical_latency
        if info.int_latency is not None and _all_integer(op):
            return info.int_latency
        return info.latency

    def _schedule_segment(self, ops: list[Operation]) -> Segment:
        starts: dict[int, int] = {}  # id(op) -> start cycle
        by_value: dict[int, Operation] = {}
        last_var_touch: dict[int, list[Operation]] = {}
        mem_order: dict[int, list[Operation]] = {}  # base id -> prior mem ops
        sched_ops: list[ScheduledOp] = []

        for op in ops:
            ready = 0
            for operand in op.operands:
                producer = by_value.get(operand.id)
                if producer is not None:
                    ready = max(ready, starts[id(producer)]
                                + self.op_latency(producer))
            # register access ordering (RAW/WAR/WAW)
            if op.opcode in (Opcode.READ_VAR, Opcode.WRITE_VAR):
                var_id = op.operands[0].id
                for prior in last_var_touch.get(var_id, []):
                    if op.opcode is Opcode.READ_VAR \
                            and prior.opcode is Opcode.READ_VAR:
                        continue
                    extra = self.op_latency(prior) if \
                        prior.opcode is Opcode.WRITE_VAR else 0
                    ready = max(ready, starts[id(prior)] + extra)
                last_var_touch.setdefault(var_id, []).append(op)
            # memory ordering on the same base unless provably disjoint
            if op.opcode in (Opcode.LOAD, Opcode.STORE, Opcode.PRELOAD):
                bases = [op.operands[0].id]
                if op.opcode is Opcode.PRELOAD:
                    bases.append(op.operands[2].id)
                accesses = self.accesses.get(id(op), ())
                for base_id in bases:
                    for prior in mem_order.get(base_id, []):
                        prior_accesses = self.accesses.get(id(prior), ())
                        if accesses and prior_accesses and not any(
                                (a.is_write or p.is_write) and a.base == p.base
                                and a.overlaps(p)
                                for a in accesses for p in prior_accesses):
                            continue
                        ready = max(ready, starts[id(prior)]
                                    + self.op_latency(prior))
                    mem_order.setdefault(base_id, []).append(op)

            starts[id(op)] = ready
            if op.result is not None:
                by_value[op.result.id] = op
            sched_ops.append(ScheduledOp(op, ready, self.op_latency(op)))

        return self._finalize_segment(sched_ops)

    def _finalize_segment(self, sched_ops: list[ScheduledOp]) -> Segment:
        segment = Segment(sched_ops)
        depth = 0
        vlo_stage_set: set[int] = set()
        uses: dict[int, int] = {}  # value id -> last use start
        for sched in sched_ops:
            depth = max(depth, sched.end)
            for operand in sched.op.operands:
                uses[operand.id] = max(uses.get(operand.id, 0), sched.start)
            op = sched.op
            info = op.info
            lanes = _lanes_of(op)
            if info.flops and _is_float(op):
                segment.flops += info.flops * lanes
            elif info.flops or info.intops:
                segment.intops += max(info.flops, info.intops) * lanes
            if op.opcode in (Opcode.LOAD, Opcode.STORE):
                base = op.operands[0]
                assert isinstance(base.type, PointerType)
                is_write = op.opcode is Opcode.STORE
                if base.type.space is MemorySpace.EXTERNAL:
                    nbytes = _access_bytes(op)
                    segment.mem_ops.append(MemOp(op, sched.start, sched.latency,
                                                 is_write, nbytes))
                    vlo_stage_set.add(sched.start)
                else:
                    if is_write:
                        segment.bram_writes += 1
                    else:
                        segment.bram_reads += 1
            elif op.opcode is Opcode.PRELOAD:
                # the preloader issues one DMA burst (read from external);
                # actual byte counts come from the functional trace
                segment.mem_ops.append(MemOp(op, sched.start, sched.latency,
                                             False, 0))
                segment.bram_writes += 1
                vlo_stage_set.add(sched.start)
            elif op.is_vlo:
                vlo_stage_set.add(sched.start)
        segment.depth = max(depth, 1)
        segment.vlo_stages = len(vlo_stage_set)
        # pipeline register estimate: value bits held from producing stage
        # to last consuming stage
        live_bits = 0
        context_bits = 0
        for sched in sched_ops:
            result = sched.op.result
            if result is None:
                continue
            last_use = uses.get(result.id)
            if last_use is None:
                continue
            lifetime = max(0, last_use - sched.end)
            bits = max(1, result.type.bits())
            live_bits += bits * max(1, lifetime)
            if any(sched.end <= stage < last_use for stage in vlo_stage_set):
                context_bits += bits
        segment.live_bits = live_bits
        segment.context_bits = context_bits
        return segment

    # ------------------------------------------------------------------
    # item-level dependence DAG
    # ------------------------------------------------------------------
    def _item_deps(self, items: list[Item]) -> list[list[int]]:
        n = len(items)
        defined: list[set[int]] = []
        used: list[set[int]] = []
        vars_read: list[set[int]] = []
        vars_written: list[set[int]] = []
        accesses: list[list[Access]] = []
        locks: list[set[int]] = []

        for item in items:
            d: set[int] = set()
            u: set[int] = set()
            vr: set[int] = set()
            vw: set[int] = set()
            acc: list[Access] = []
            lk: set[int] = set()
            for op in _item_ops(item):
                for inner in op.walk():
                    if inner.result is not None:
                        d.add(inner.result.id)
                    for value in inner.defined:
                        d.add(value.id)
                    for operand in inner.operands:
                        u.add(operand.id)
                    if inner.opcode is Opcode.READ_VAR:
                        vr.add(inner.operands[0].id)
                    elif inner.opcode is Opcode.WRITE_VAR:
                        vw.add(inner.operands[0].id)
                    elif inner.opcode is Opcode.CRITICAL:
                        lk.add(inner.attrs.get("lock", 0))
                    acc.extend(self.accesses.get(id(inner), ()))
            defined.append(d)
            used.append(u)
            vars_read.append(vr)
            vars_written.append(vw)
            accesses.append(acc)
            locks.append(lk)

        deps: list[list[int]] = [[] for _ in range(n)]
        for j in range(n):
            for i in range(j):
                if isinstance(items[i], BarrierNode) or \
                        isinstance(items[j], BarrierNode):
                    deps[j].append(i)
                    continue
                if used[j] & defined[i]:
                    deps[j].append(i)
                    continue
                if (vars_written[i] & (vars_read[j] | vars_written[j])) or \
                        (vars_read[i] & vars_written[j]):
                    deps[j].append(i)
                    continue
                if locks[i] & locks[j]:
                    deps[j].append(i)
                    continue
                if conflicts(accesses[i], accesses[j]):
                    deps[j].append(i)
                    continue
        return deps


def _item_ops(item: Item) -> list[Operation]:
    if isinstance(item, Segment):
        return item.ops
    return [item.op]


def _lanes_of(op: Operation) -> int:
    ty: Optional[Type] = None
    if op.result is not None:
        ty = op.result.type
    elif op.operands:
        ty = op.operands[-1].type
    return ty.lanes if isinstance(ty, VectorType) else 1


def _is_float(op: Operation) -> bool:
    ty = op.result.type if op.result is not None else (
        op.operands[-1].type if op.operands else None)
    return bool(ty is not None and ty.is_float)


def _all_integer(op: Operation) -> bool:
    for operand in op.operands:
        ty = operand.type
        if isinstance(ty, VectorType):
            ty = ty.elem
        if not (isinstance(ty, ScalarType) and (ty.is_integer or ty.name == "i1")):
            return False
    return bool(op.operands)


def _access_bytes(op: Operation) -> int:
    if op.opcode is Opcode.LOAD:
        assert op.result is not None
        return max(1, op.result.type.bits() // 8)
    return max(1, op.operands[2].type.bits() // 8)
