"""Post-P&R resource and timing model (registers, ALMs, Fmax).

The paper evaluates its profiling infrastructure by comparing post-
place-and-route resource counts on a Stratix 10 with and without the
profiling unit (§V-B).  Without the vendor tools we model resources
analytically:

* **operators** — per-opcode register/ALM costs from
  :data:`repro.ir.ops.OP_INFO` (vector operators replicate per lane);
* **pipeline registers** — one flip-flop per live value bit per stage it
  crosses (``Segment.live_bits``);
* **thread-reordering context** — stages containing VLOs must hold the
  context of *all* hardware threads (§III-B), charged as
  ``context_bits * num_threads`` plus a hardware-thread-scheduler per
  reordering stage;
* **infrastructure** — Avalon masters (one read + one write per thread),
  the preloader, the hardware semaphore and the slave interface (Fig. 1);
* **profiling unit** — state recorder, trace buffer, flush FSM and one
  aggregating counter per event kind with two inputs per source
  (§IV-B.2), sized from the schedule's source counts.

Fmax is modeled as a base frequency degraded by routing pressure
(growing with ALM count), with the profiling unit's snooping taps adding
a small extra penalty — calibrated to the paper's reported bands
(≤8 MHz @140 MHz for the GEMM study, 1 MHz @148 MHz for π).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.graph import Operation
from ..ir.ops import Opcode
from ..ir.types import MemorySpace, PointerType, ScalarType, VectorType
from ..profiling.config import EventKind, ProfilingConfig
from .schedule import KernelSchedule, Segment

__all__ = ["AreaBreakdown", "AreaReport", "estimate_area"]


# -- infrastructure constants (ALMs / registers), Stratix-10-flavoured ----
_AVALON_MASTER = (1480, 3450)      # per thread, read + write port pair
_PRELOADER = (2300, 3400)
_SEMAPHORE = (420, 520)
_SLAVE_INTERFACE = (1500, 2300)
_CONTROLLER_PER_STAGE = (30, 55)   # stage-enable logic
_HTS_PER_REORDER_STAGE = (170, 280)  # hardware thread scheduler slice
_LOCAL_MEM_GLUE = (75, 105)        # per local array (BRAM itself excluded)
#: control/valid/bypass overhead multiplier on datapath pipeline registers
_PIPELINE_REG_FACTOR = 1.8

# -- profiling unit constants ------------------------------------------------
_STATE_RECORDER_BASE = (52, 90)
_TRACE_BUFFER = (96, 140)          # flush FSM + address generator
_COUNTER_BASE = (36, 70)           # one aggregating counter (64-bit)
_COUNTER_PER_SOURCE = (14, 21)     # two-input aggregation per source


@dataclass(frozen=True)
class AreaBreakdown:
    """Registers/ALMs split by origin."""

    operator_registers: int = 0
    operator_alms: int = 0
    pipeline_registers: int = 0
    context_registers: int = 0
    infra_registers: int = 0
    infra_alms: int = 0
    profiling_registers: int = 0
    profiling_alms: int = 0

    @property
    def registers(self) -> int:
        return (self.operator_registers + self.pipeline_registers
                + self.context_registers + self.infra_registers
                + self.profiling_registers)

    @property
    def alms(self) -> int:
        return self.operator_alms + self.infra_alms + self.profiling_alms

    def to_dict(self) -> dict:
        from dataclasses import asdict
        return asdict(self)


@dataclass(frozen=True)
class AreaReport:
    """Full resource/timing estimate for one compiled accelerator."""

    breakdown: AreaBreakdown
    fmax_mhz: float

    @property
    def registers(self) -> int:
        return self.breakdown.registers

    @property
    def alms(self) -> int:
        return self.breakdown.alms

    def to_dict(self) -> dict:
        """JSON-ready form (used by ``repro.explore`` candidate records)."""

        return {
            "registers": self.registers,
            "alms": self.alms,
            "fmax_mhz": self.fmax_mhz,
            "breakdown": self.breakdown.to_dict(),
        }

    def overhead_vs(self, baseline: "AreaReport") -> dict[str, float]:
        """Relative overhead of ``self`` against a profiling-free baseline."""

        return {
            "registers_pct": 100.0 * (self.registers - baseline.registers)
                             / baseline.registers,
            "alms_pct": 100.0 * (self.alms - baseline.alms) / baseline.alms,
            "fmax_delta_mhz": baseline.fmax_mhz - self.fmax_mhz,
        }


def _op_area(op: Operation) -> tuple[int, int]:
    """(registers, alms) of one operator instance."""

    info = op.info
    regs, alms = info.registers, info.alms
    if info.int_registers is not None and _integer_op(op):
        regs, alms = info.int_registers, info.int_alms or alms
    lanes = 1
    ty = op.result.type if op.result is not None else None
    if ty is None and op.operands:
        ty = op.operands[-1].type
    if isinstance(ty, VectorType):
        lanes = ty.lanes
    return regs * lanes, alms * lanes


def _integer_op(op: Operation) -> bool:
    for operand in op.operands:
        ty = operand.type
        if isinstance(ty, VectorType):
            ty = ty.elem
        if not isinstance(ty, ScalarType) or ty.is_float:
            return False
    return bool(op.operands)


def estimate_area(schedule: KernelSchedule,
                  profiling: ProfilingConfig) -> AreaReport:
    """Estimate post-P&R resources for the scheduled kernel."""

    kernel = schedule.kernel
    threads = kernel.num_threads

    op_regs = op_alms = 0
    n_local_arrays = 0
    for op in kernel.walk():
        if op.opcode is Opcode.ALLOC_LOCAL:
            n_local_arrays += 1
        regs, alms = _op_area(op)
        op_regs += regs
        op_alms += alms

    pipeline_regs = 0
    context_regs = 0
    for segment in schedule.body.walk_segments():
        pipeline_regs += int(segment.live_bits * _PIPELINE_REG_FACTOR)
        context_regs += segment.context_bits * threads

    total_stages = schedule.total_stages
    reorder_stages = schedule.reordering_stages
    infra_alms = (_SLAVE_INTERFACE[0] + _PRELOADER[0] + _SEMAPHORE[0]
                  + threads * _AVALON_MASTER[0]
                  + total_stages * _CONTROLLER_PER_STAGE[0]
                  + reorder_stages * _HTS_PER_REORDER_STAGE[0]
                  + n_local_arrays * _LOCAL_MEM_GLUE[0])
    infra_regs = (_SLAVE_INTERFACE[1] + _PRELOADER[1] + _SEMAPHORE[1]
                  + threads * _AVALON_MASTER[1]
                  + total_stages * _CONTROLLER_PER_STAGE[1]
                  + reorder_stages * _HTS_PER_REORDER_STAGE[1]
                  + n_local_arrays * _LOCAL_MEM_GLUE[1])

    prof_regs = prof_alms = 0
    if profiling.enabled:
        prof_alms, prof_regs = _profiling_area(schedule, profiling)

    breakdown = AreaBreakdown(
        operator_registers=op_regs,
        operator_alms=op_alms,
        pipeline_registers=pipeline_regs,
        context_registers=context_regs,
        infra_registers=infra_regs,
        infra_alms=infra_alms,
        profiling_registers=prof_regs,
        profiling_alms=prof_alms,
    )
    fmax = _fmax(breakdown)
    return AreaReport(breakdown, fmax)


def _profiling_area(schedule: KernelSchedule,
                    config: ProfilingConfig) -> tuple[int, int]:
    """(alms, registers) of the profiling unit (§IV-B)."""

    kernel = schedule.kernel
    threads = kernel.num_threads
    alms = regs = 0

    if config.record_states:
        alms += _STATE_RECORDER_BASE[0]
        # 2-bit state register per thread + 32-bit clock + change detector
        regs += _STATE_RECORDER_BASE[1] + config.state_record_bits(threads)

    if config.events or config.record_states:
        alms += _TRACE_BUFFER[0]
        # line-assembly register (the buffer body itself lives in BRAM)
        regs += _TRACE_BUFFER[1] + config.buffer_width

    segments = list(schedule.body.walk_segments())
    for event in config.events:
        sources = _event_sources(event, schedule, segments, threads)
        alms += _COUNTER_BASE[0] + sources * _COUNTER_PER_SOURCE[0]
        regs += (_COUNTER_BASE[1] + config.counter_width
                 + sources * _COUNTER_PER_SOURCE[1])
    return alms, regs


def _event_sources(event: EventKind, schedule: KernelSchedule,
                   segments: list[Segment], threads: int) -> int:
    """How many hardware taps feed one event counter (two inputs each)."""

    if event is EventKind.STALLS:
        # one tap per stage that can stall (§IV-B.2a)
        return max(1, schedule.reordering_stages)
    if event is EventKind.FLOPS:
        # one tap per compute stage with FP activity (§IV-B.2b)
        return max(1, sum(1 for s in segments if s.flops))
    if event is EventKind.INTOPS:
        return max(1, sum(1 for s in segments if s.intops))
    # memory counters sit in the central Avalon interface: one tap per
    # thread port (§IV-B.2c chooses this spot to reduce footprint)
    return threads


def _fmax(breakdown: AreaBreakdown, base_mhz: float = 152.0) -> float:
    """Routing-pressure timing model.

    Larger designs close timing at lower frequencies.  The profiling
    unit's snooping taps are high-fanout nets whose *relative* weight in
    the design determines the extra penalty: small accelerators suffer
    most (calibrated to the paper's bands — up to 8 MHz for the GEMM
    study's smallest version, ~1 MHz for large designs like π, §V-B).
    """

    alms = breakdown.alms
    regs = breakdown.registers
    pressure = (alms / 9000.0) + (regs / 75000.0)
    fmax = base_mhz - pressure
    if breakdown.profiling_alms and alms:
        share = breakdown.profiling_alms / alms
        fmax -= min(8.0, 5500.0 * share * share)
    return round(fmax, 1)
