"""IR-level HLS transformations.

Three passes run before scheduling, mirroring what Nymble (and HLS tools
generally) do to the dataflow graph:

* :func:`unroll_loops` — honor ``#pragma unroll N``: replicate the loop
  body N times spatially (the trip count shrinks by N).  Loops whose
  static trip count equals the unroll factor are fully dissolved into
  the parent block.
* :func:`simplify` — constant folding, ``read_var`` forwarding within
  straight-line code, and vector ``extract(insert(...))`` forwarding.
  After full unrolling this turns per-lane accumulator updates into
  independent dependence chains (one per lane), which is what lets the
  π kernel's unrolled loop reach a small initiation interval instead of
  serializing through the vector register.
* :func:`eliminate_dead_ops` — drop unused pure operations.

All passes mutate the kernel in place and are idempotent.
"""

from __future__ import annotations

from typing import Optional

from ..ir.graph import Block, Kernel, Operation, Value
from ..ir.ops import Opcode

__all__ = ["unroll_loops", "simplify", "eliminate_dead_ops", "run_pipeline",
           "clone_block", "static_trip_count"]


# ----------------------------------------------------------------------
# cloning
# ----------------------------------------------------------------------
def clone_block(block: Block, value_map: dict[int, Value]) -> Block:
    """Deep-copy ``block``, rewriting operand references through ``value_map``.

    ``value_map`` maps old ``Value.id`` to replacement values; values not
    in the map (defined outside the block) are shared.  Variable handles
    (``decl_var``) declared *inside* the block are cloned so replicas get
    distinct registers; handles declared outside stay shared, preserving
    accumulator semantics across replicas.
    """

    new_block = Block(label=block.label)
    for op in block.ops:
        new_block.append(_clone_op(op, value_map))
    return new_block


def _clone_op(op: Operation, value_map: dict[int, Value]) -> Operation:
    operands = [value_map.get(v.id, v) for v in op.operands]
    result: Optional[Value] = None
    if op.result is not None:
        result = Value(op.result.type, name=op.result.name)
        value_map[op.result.id] = result
    attrs = dict(op.attrs)
    defined: list[Value] = []
    for value in op.defined:
        new_value = Value(value.type, name=value.name)
        value_map[value.id] = new_value
        defined.append(new_value)
    var = attrs.get("var")
    if isinstance(var, Value):
        attrs["var"] = value_map.get(var.id, var)
    new_op = Operation(op.opcode, operands, result, attrs,
                       regions=[clone_block(r, value_map) for r in op.regions],
                       defined=defined)
    return new_op


# ----------------------------------------------------------------------
# unrolling
# ----------------------------------------------------------------------
def static_trip_count(op: Operation) -> Optional[int]:
    """Trip count of a ``for`` if all bounds are compile-time constants."""

    bounds = []
    for operand in op.operands:
        producer = operand.producer
        if producer is None or producer.opcode is not Opcode.CONST:
            return None
        bounds.append(int(producer.attrs["value"]))
    lower, upper, step = bounds
    if step <= 0 or upper <= lower:
        return 0
    return (upper - lower + step - 1) // step


def unroll_loops(kernel: Kernel) -> int:
    """Apply ``unroll`` attributes throughout ``kernel``; returns #loops changed."""

    changed = _unroll_in_block(kernel.body)
    _hoist_widened_steps(kernel.body)
    return changed


def _unroll_in_block(block: Block) -> int:
    changed = 0
    new_ops: list[Operation] = []
    for op in block.ops:
        for region in op.regions:
            changed += _unroll_in_block(region)
        if op.opcode is Opcode.FOR and op.attrs.get("unroll", 1) > 1:
            factor = op.attrs["unroll"]
            trips = static_trip_count(op)
            if trips is not None and factor >= trips and trips > 0:
                new_ops.extend(_fully_unroll(op, trips))
                changed += 1
                continue
            if trips is None or (trips % factor == 0 and factor > 1):
                _partially_unroll(op, factor)
                changed += 1
                new_ops.append(op)
                continue
            # Trip count not divisible: keep the rolled loop (safe fallback).
            op.attrs["unroll"] = 1
        new_ops.append(op)
    block.ops = new_ops
    return changed


def _bound_const(op: Operation, idx: int) -> int:
    producer = op.operands[idx].producer
    assert producer is not None and producer.opcode is Opcode.CONST
    return int(producer.attrs["value"])


def _fully_unroll(op: Operation, trips: int) -> list[Operation]:
    """Replace a constant-trip loop by ``trips`` copies of its body."""

    lower = _bound_const(op, 0)
    step = _bound_const(op, 2)
    iv = op.defined[0]
    out: list[Operation] = []
    for r in range(trips):
        const = Value(iv.type, name=f"{iv.name}_{r}")
        const_op = Operation(Opcode.CONST, [], const, {"value": lower + r * step})
        out.append(const_op)
        value_map = {iv.id: const}
        replica = clone_block(op.regions[0], value_map)
        out.extend(replica.ops)
    return out


def _partially_unroll(op: Operation, factor: int) -> None:
    """Replicate the body ``factor`` times; the step grows by ``factor``.

    Replica ``r`` sees the induction value ``iv + r*step``.  The caller
    must guarantee the trip count is a multiple of ``factor`` (checked
    for static trip counts; runtime trip counts keep the kernel's own
    responsibility, as with real HLS unroll pragmas).
    """

    iv = op.defined[0]
    step_value = op.operands[2]
    body = op.regions[0]
    new_body = Block(label=body.label)
    for r in range(factor):
        if r == 0:
            value_map: dict[int, Value] = {}
            replica = clone_block(body, value_map)
            new_body.ops.extend(replica.ops)
            continue
        offset = Value(iv.type, name=f"{iv.name}_off{r}")
        mul_c = Value(iv.type)
        new_body.append(Operation(Opcode.CONST, [], mul_c, {"value": r}))
        scaled = Value(iv.type)
        new_body.append(Operation(Opcode.MUL, [mul_c, step_value], scaled))
        new_body.append(Operation(Opcode.ADD, [iv, scaled], offset))
        value_map = {iv.id: offset}
        replica = clone_block(body, value_map)
        new_body.ops.extend(replica.ops)
    # step *= factor: synthesize the widened step as a new constant if the
    # original was constant, else an explicit multiply in the parent block
    # is needed — we require constant steps for partial unroll.
    producer = step_value.producer
    if producer is not None and producer.opcode is Opcode.CONST:
        widened = Value(step_value.type)
        const_op = Operation(Opcode.CONST, [], widened,
                             {"value": int(producer.attrs["value"]) * factor})
        new_body_ops = [const_op]
        op.operands[2] = widened
        # the constant must dominate the loop: prepend to the loop's body's
        # parent is unavailable here, so keep it as the first op of the loop
        # operands' producer block — instead we re-point after insertion:
        op.attrs["_widened_step_op"] = const_op
        _ = new_body_ops
    else:
        raise ValueError("partial unroll requires a constant loop step")
    op.attrs["unroll"] = 1
    op.attrs["unrolled_by"] = factor
    op.regions[0] = new_body


def _hoist_widened_steps(block: Block) -> None:
    """Insert widened-step constants created by partial unrolling."""

    new_ops: list[Operation] = []
    for op in block.ops:
        for region in op.regions:
            _hoist_widened_steps(region)
        pending = op.attrs.pop("_widened_step_op", None)
        if pending is not None:
            new_ops.append(pending)
        new_ops.append(op)
    block.ops = new_ops


# ----------------------------------------------------------------------
# simplification
# ----------------------------------------------------------------------
_FOLDABLE = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
}


def simplify(kernel: Kernel, max_rounds: int = 8) -> int:
    """Run local simplifications to fixpoint; returns #rewrites applied."""

    total = 0
    for _ in range(max_rounds):
        changed = _simplify_block(kernel.body, {})
        total += changed
        if not changed:
            break
    return total


def _const_of(value: Value) -> Optional[object]:
    producer = value.producer
    if producer is not None and producer.opcode is Opcode.CONST:
        return producer.attrs["value"]
    return None


def _simplify_block(block: Block, replacements: dict[int, Value]) -> int:
    changed = 0
    #: var handle id -> Value last written in this straight-line stretch
    forward: dict[int, Value] = {}

    def resolve(value: Value) -> Value:
        seen = set()
        while value.id in replacements and value.id not in seen:
            seen.add(value.id)
            value = replacements[value.id]
        return value

    for op in block.ops:
        new_operands = [resolve(v) for v in op.operands]
        for old, new in zip(op.operands, new_operands):
            if old is not new:
                changed += 1
        op.operands = new_operands
        code = op.opcode
        if op.regions:
            for region in op.regions:
                changed += _simplify_block(region, replacements)
            # Regions may write any var: stop forwarding across them.
            forward.clear()
            continue
        if code is Opcode.WRITE_VAR:
            forward[op.operands[0].id] = op.operands[1]
        elif code is Opcode.READ_VAR:
            known = forward.get(op.operands[0].id)
            if known is not None and op.result is not None \
                    and known.type == op.result.type:
                # rewrites of later uses are counted where they happen
                replacements[op.result.id] = known
        elif code in _FOLDABLE and op.result is not None:  # noqa: SIM114
            a, b = _const_of(op.operands[0]), _const_of(op.operands[1])
            if isinstance(a, int) and isinstance(b, int):
                op.opcode = Opcode.CONST
                op.attrs = {"value": _FOLDABLE[code](a, b)}
                op.operands = []
                changed += 1
        elif code is Opcode.EXTRACT and op.result is not None:
            changed += _forward_extract(op, replacements)
    return changed


def _forward_extract(op: Operation, replacements: dict[int, Value]) -> int:
    """Rewrite ``extract(insert(v, i, x), j)`` with constant lanes."""

    lane = _const_of(op.operands[1])
    if not isinstance(lane, int):
        return 0
    source = op.operands[0]
    hops = 0
    while True:
        producer = source.producer
        if producer is None:
            break
        if producer.opcode is Opcode.INSERT:
            ins_lane = _const_of(producer.operands[1])
            if not isinstance(ins_lane, int):
                break
            if ins_lane == lane:
                assert op.result is not None
                replacements[op.result.id] = producer.operands[2]
                return 0
            source = producer.operands[0]
            hops += 1
            continue
        if producer.opcode is Opcode.BROADCAST:
            assert op.result is not None
            replacements[op.result.id] = producer.operands[0]
            return 0
        break
    if hops:
        # Passed through inserts to other lanes: shorten the dependence
        # chain so independent lanes stay independent in the schedule.
        op.operands[0] = source
        return 1
    return 0


# ----------------------------------------------------------------------
# dead code elimination
# ----------------------------------------------------------------------
_SIDE_EFFECT_OPS = {Opcode.STORE, Opcode.WRITE_VAR, Opcode.BARRIER,
                    Opcode.CRITICAL, Opcode.FOR, Opcode.IF, Opcode.DECL_VAR,
                    Opcode.ALLOC_LOCAL}


def eliminate_dead_ops(kernel: Kernel, max_rounds: int = 8) -> int:
    """Remove pure operations whose results are never used."""

    removed_total = 0
    for _ in range(max_rounds):
        uses: set[int] = set()
        for op in kernel.walk():
            for operand in op.operands:
                uses.add(operand.id)
        removed = _dce_block(kernel.body, uses)
        removed_total += removed
        if not removed:
            break
    return removed_total


def _dce_block(block: Block, uses: set[int]) -> int:
    removed = 0
    kept: list[Operation] = []
    for op in block.ops:
        for region in op.regions:
            removed += _dce_block(region, uses)
        if op.opcode in _SIDE_EFFECT_OPS or op.opcode is Opcode.LOAD:
            # Loads may fault / have timing significance: keep external
            # semantics simple by retaining them only if used — BRAM/DRAM
            # reads without users are safe to drop, matching HLS pruning.
            if op.opcode is Opcode.LOAD and op.result is not None \
                    and op.result.id not in uses:
                removed += 1
                continue
            kept.append(op)
            continue
        if op.result is not None and op.result.id not in uses:
            removed += 1
            continue
        kept.append(op)
    block.ops = kept
    return removed


def run_pipeline(kernel: Kernel) -> dict[str, int]:
    """Run the standard pass pipeline; returns per-pass change counts."""

    from .. import telemetry

    stats = {}
    with telemetry.span("hls.transforms.unroll", category="hls"):
        stats["unrolled"] = unroll_loops(kernel)
    with telemetry.span("hls.transforms.simplify", category="hls"):
        stats["simplified"] = simplify(kernel)
    with telemetry.span("hls.transforms.dce", category="hls"):
        stats["dce"] = eliminate_dead_ops(kernel)
    return stats
