"""Nymble-like HLS core: transforms, scheduling, dependence analysis,
area/timing modeling and the compiler driver.  See DESIGN.md §3."""

from .area import AreaBreakdown, AreaReport, estimate_area
from .cache import CompileCache, configure_cache, get_default_cache
from .compiler import Accelerator, HLSCompiler, HLSOptions, compile_source
from .report import compile_report, schedule_tree
from .depanalysis import Access, AccessMap, collect_accesses, conflicts, ops_conflict
from .schedule import (
    BarrierNode, BodySchedule, CriticalNode, IfNode, Item, KernelSchedule,
    LoopNode, MemOp, ScheduleOptions, ScheduledOp, Segment, schedule_kernel,
)
from .symexpr import Affine, Interval, Sym, difference_excludes
from .transforms import (
    clone_block, eliminate_dead_ops, run_pipeline, simplify, static_trip_count,
    unroll_loops,
)

__all__ = [
    "AreaBreakdown", "AreaReport", "estimate_area",
    "CompileCache", "configure_cache", "get_default_cache",
    "Accelerator", "HLSCompiler", "HLSOptions", "compile_source",
    "compile_report", "schedule_tree",
    "Access", "AccessMap", "collect_accesses", "conflicts", "ops_conflict",
    "BarrierNode", "BodySchedule", "CriticalNode", "IfNode", "Item",
    "KernelSchedule", "LoopNode", "MemOp", "ScheduleOptions", "ScheduledOp",
    "Segment", "schedule_kernel",
    "Affine", "Interval", "Sym", "difference_excludes",
    "clone_block", "eliminate_dead_ops", "run_pipeline", "simplify",
    "static_trip_count", "unroll_loops",
]
