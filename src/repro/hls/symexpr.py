"""Symbolic affine expressions for memory dependence analysis.

The HLS scheduler must decide whether two memory accesses can touch the
same element.  Array indices in the kernels are affine combinations of
loop induction variables, thread ids and simple derived values — plus
the ping-pong pattern ``(x % N)`` that the double-buffered GEMM uses to
alternate buffers.  This module provides:

* :class:`Sym` — an interned symbol with an optional value range;
* :class:`Affine` — ``const + sum(coeff_i * sym_i)`` with helpers to
  add/subtract/scale and to canonicalize ``(affine) % N`` and
  ``(affine) / N`` into structural symbols (so the *same* sub-expression
  appearing in two different accesses becomes the *same* symbol and
  cancels in differences);
* :func:`difference_excludes` — the disjointness test: can
  ``a - b`` ever land inside a forbidden window?  It combines interval
  arithmetic over symbol ranges with the modular-arithmetic lemma
  ``mod(x, N) - mod(x + c, N) ≡ -c (mod N)``, which is what proves the
  double-buffer load and compute phases independent (DESIGN.md §5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Sym", "Affine", "Interval", "difference_excludes"]

_INF = float("inf")


@dataclass(frozen=True)
class Interval:
    """A closed integer interval (possibly unbounded)."""

    lo: float = -_INF
    hi: float = _INF

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def scale(self, factor: int) -> "Interval":
        a, b = self.lo * factor, self.hi * factor
        return Interval(min(a, b), max(a, b))

    def intersects(self, other: "Interval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    @property
    def bounded(self) -> bool:
        return self.lo != -_INF and self.hi != _INF


@dataclass(frozen=True)
class Sym:
    """An interned symbol.

    ``key`` makes symbols *structural*: two ``Sym`` objects with the same
    key are the same symbol (and cancel in differences).  ``kind`` is
    one of ``iv`` (loop induction variable), ``tid``, ``var`` (register
    version), ``mod``, ``div`` or ``opaque``.  ``mod`` symbols remember
    their canonicalized inner affine (``inner``) and modulus so the
    modular lemma can relate two different mod symbols.
    """

    kind: str
    key: tuple
    range: Interval = field(default=Interval(), compare=False)
    inner: Optional["Affine"] = field(default=None, compare=False)
    modulus: Optional[int] = field(default=None, compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}{self.key}"


_opaque_counter = itertools.count()


def fresh_opaque() -> Sym:
    """A unique symbol about which nothing is known."""

    return Sym("opaque", ("fresh", next(_opaque_counter)))


@dataclass(frozen=True)
class Affine:
    """``const + sum(coeff * sym)`` with integer coefficients.

    Instances are immutable; ``terms`` is a tuple of (Sym, coeff) sorted
    by symbol key so equal expressions compare (and hash) equal — this
    is what makes :class:`Sym` interning structural.
    """

    const: int = 0
    terms: tuple[tuple[Sym, int], ...] = ()

    # -- constructors ---------------------------------------------------
    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine(const=value)

    @staticmethod
    def symbol(sym: Sym, coeff: int = 1) -> "Affine":
        if coeff == 0:
            return Affine()
        return Affine(0, ((sym, coeff),))

    @staticmethod
    def build(const: int, terms: dict[Sym, int]) -> "Affine":
        cleaned = tuple(sorted(((s, c) for s, c in terms.items() if c != 0),
                               key=lambda item: repr(item[0])))
        return Affine(const, cleaned)

    # -- algebra ----------------------------------------------------------
    def _as_dict(self) -> dict[Sym, int]:
        return {s: c for s, c in self.terms}

    def __add__(self, other: "Affine") -> "Affine":
        terms = self._as_dict()
        for sym, coeff in other.terms:
            terms[sym] = terms.get(sym, 0) + coeff
        return Affine.build(self.const + other.const, terms)

    def __sub__(self, other: "Affine") -> "Affine":
        return self + other.scale(-1)

    def scale(self, factor: int) -> "Affine":
        if factor == 0:
            return Affine()
        return Affine.build(self.const * factor,
                            {s: c * factor for s, c in self.terms})

    def add_const(self, value: int) -> "Affine":
        return Affine(self.const + value, self.terms)

    @property
    def is_constant(self) -> bool:
        return not self.terms

    # -- canonical mod/div ---------------------------------------------------
    def mod(self, modulus: int) -> "Affine":
        """Canonical ``self % modulus`` (C semantics for non-negative values).

        The constant part is folded into the canonical inner expression
        so that ``(x) % N`` and ``(x + N) % N`` produce the same symbol,
        and ``(x + c) % N`` symbols with equal inner-``x`` can be related
        by the modular lemma in :func:`difference_excludes`.
        """

        if modulus <= 0:
            return Affine.symbol(fresh_opaque())
        if self.is_constant:
            return Affine.constant(self.const % modulus)
        inner = Affine(self.const % modulus, self.terms)
        sym = Sym("mod", ("mod", inner, modulus), Interval(0, modulus - 1),
                  inner=inner, modulus=modulus)
        return Affine.symbol(sym)

    def div(self, divisor: int) -> "Affine":
        """Structural ``self / divisor`` (opaque but interned by structure)."""

        if divisor <= 0:
            return Affine.symbol(fresh_opaque())
        if self.is_constant:
            return Affine.constant(self.const // divisor)
        sym = Sym("div", ("div", self, divisor))
        return Affine.symbol(sym)

    # -- ranges ---------------------------------------------------------------
    def interval(self) -> Interval:
        """Best-effort value range from symbol ranges."""

        result = Interval(self.const, self.const)
        for sym, coeff in self.terms:
            result = result + sym.range.scale(coeff)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [str(self.const)] if self.const or not self.terms else []
        parts += [f"{c}*{s!r}" for s, c in self.terms]
        return " + ".join(parts)


def difference_excludes(a: Affine, b: Affine, window: Interval) -> bool:
    """Return True if ``a - b`` provably never falls inside ``window``.

    ``window`` is the forbidden interval: for two accesses of widths
    ``wa`` and ``wb`` starting at ``a`` and ``b``, overlap means
    ``-(wb-1) <= a - b <= wa-1``.

    Two reasoning steps:

    1. *Modular pairing*: if the difference contains exactly two mod
       symbols with the same modulus ``N``, inner expressions differing
       by a constant ``c``, and opposite unit coefficients scaled by
       ``f``, then that part contributes ``f * d`` where
       ``d ≡ -c (mod N)`` and ``|d| <= N-1`` — a *set* of values rather
       than a full interval.  (This proves ping-pong buffers disjoint.)
    2. *Interval arithmetic* over the remaining terms' ranges.
    """

    diff = a - b
    base = Interval(diff.const, diff.const)
    candidate_values: Optional[list[int]] = None

    mods = [(s, c) for s, c in diff.terms if s.kind == "mod"]
    others = [(s, c) for s, c in diff.terms if s.kind != "mod"]

    if len(mods) == 2:
        (s1, c1), (s2, c2) = mods
        if (s1.modulus == s2.modulus and s1.modulus is not None
                and c1 == -c2 and s1.inner is not None and s2.inner is not None):
            inner_diff = s1.inner - s2.inner
            if inner_diff.is_constant:
                n = s1.modulus
                delta = inner_diff.const
                # s1.inner = z + delta, s2.inner = z
                #   =>  s1 - s2 = mod(z+delta, N) - mod(z, N) ≡ delta (mod N)
                values = [d for d in range(-(n - 1), n)
                          if (d - delta) % n == 0]
                candidate_values = [c1 * d for d in values]
                mods = []
    for sym, coeff in mods:  # unpaired mod symbols: fall back to their range
        others.append((sym, coeff))

    rest = base
    for sym, coeff in others:
        rest = rest + sym.range.scale(coeff)

    if candidate_values is None:
        return not rest.intersects(window)
    # difference = (paired-mod value) + rest; exclude window only if every
    # candidate shifted interval misses it.
    return all(not Interval(rest.lo + v, rest.hi + v).intersects(window)
               for v in candidate_values)
