"""Cycle accounting: attribute every non-useful cycle to a cause.

The profiling unit's ``STALLS`` counter says *how much* the pipelines
waited; this module says *why*.  When ``SimConfig.attribution`` is on,
the executor decomposes each thread's wall clock — every cycle between
0 and the end of the run — into **useful** work plus eight loss causes,
per (thread, region):

* ``II_LIMIT`` — waiting for the shared datapath's initiation interval
  (the leaky-bucket issue slot, §III-B C-slow interleaving);
* ``LOCAL_PORT_CONFLICT`` — BRAM port booking against other threads;
* ``DRAM_LATENCY`` / ``DRAM_ARBITRATION`` / ``DRAM_ROW_MISS`` — a late
  external-memory response stalling the pipeline, split into the base
  latency/bus-transfer share, the channel-arbitration share and the
  row-activation share;
* ``SYNC_WAIT`` — semaphore spinning, barriers and end-of-run join;
* ``DRAIN`` — pipeline drain after the last issue of a loop;
* ``CONTROL`` — loop/branch control bubbles and the host-driven
  staggered launch.

The decomposition is exact by construction: for every thread,
``useful + Σ causes == end_cycle`` holds as an integer identity (see
:meth:`AttributionTable.check`), and the scalar reference and the
vectorized fast path produce bit-identical tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Cause", "N_SLOTS", "CAUSE_SLOTS", "AttributionTable",
           "REGION_LAUNCH", "REGION_JOIN", "REGION_SYNC", "REGION_CONTROL",
           "REGION_OTHER", "loop_region", "segment_region"]


class Cause(enum.IntEnum):
    """Slot index of each accounting bucket (``USEFUL`` is slot 0)."""

    USEFUL = 0
    II_LIMIT = 1
    LOCAL_PORT_CONFLICT = 2
    DRAM_LATENCY = 3
    DRAM_ARBITRATION = 4
    DRAM_ROW_MISS = 5
    SYNC_WAIT = 6
    DRAIN = 7
    CONTROL = 8


#: number of accounting slots per (region, thread) cell
N_SLOTS = len(Cause)

#: slots that are losses (everything but USEFUL), in slot order
CAUSE_SLOTS = tuple(cause for cause in Cause if cause is not Cause.USEFUL)

# Pseudo-region keys for cycles that belong to no schedule item.  Real
# regions use non-negative keys: ``2*uid`` for loops, ``2*uid + 1`` for
# segments (loop and segment uid namespaces are independent).
REGION_LAUNCH = -2   #: host-driven staggered thread start
REGION_JOIN = -3     #: finished thread waiting for the run to end
REGION_SYNC = -4     #: critical-section acquire / barrier wait
REGION_CONTROL = -5  #: branch bubbles outside any loop
REGION_OTHER = -6    #: hand-built schedule items without a stable uid


def loop_region(uid: int) -> int:
    """Region key of a pipelined/sequential loop with schedule uid ``uid``."""

    return 2 * uid if uid >= 0 else REGION_OTHER


def segment_region(uid: int) -> int:
    """Region key of a straight-line segment with schedule uid ``uid``."""

    return 2 * uid + 1 if uid >= 0 else REGION_OTHER


_PSEUDO_LABELS = {
    REGION_LAUNCH: "(launch)",
    REGION_JOIN: "(join)",
    REGION_SYNC: "(sync)",
    REGION_CONTROL: "(control)",
    REGION_OTHER: "(other)",
}


def pseudo_regions() -> dict[int, str]:
    """Labels for the pseudo-regions every table starts with."""

    return dict(_PSEUDO_LABELS)


@dataclass
class AttributionTable:
    """Per-(region, thread) cycle-accounting cells.

    ``cells[(region, thread)]`` is a length-:data:`N_SLOTS` list of
    integer cycle counts indexed by :class:`Cause`.  ``regions`` maps
    every region key (real or pseudo) to a display label.
    """

    num_threads: int
    regions: dict[int, str] = field(default_factory=pseudo_regions)
    cells: dict[tuple[int, int], list[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def deposit(self, region: int, thread: int, amounts) -> None:
        """Accumulate ``amounts`` (length :data:`N_SLOTS`) into a cell."""

        cell = self.cells.get((region, thread))
        if cell is None:
            cell = self.cells[(region, thread)] = [0] * N_SLOTS
        for slot, amount in enumerate(amounts):
            if amount:
                cell[slot] += amount

    # ------------------------------------------------------------------
    def thread_totals(self) -> list[list[int]]:
        """Per-thread slot sums: ``[threads][N_SLOTS]``."""

        totals = [[0] * N_SLOTS for _ in range(self.num_threads)]
        for (_region, thread), cell in self.cells.items():
            if 0 <= thread < self.num_threads:
                row = totals[thread]
                for slot in range(N_SLOTS):
                    row[slot] += cell[slot]
        return totals

    def slot_totals(self) -> list[int]:
        """Whole-run slot sums across all threads and regions."""

        totals = [0] * N_SLOTS
        for cell in self.cells.values():
            for slot in range(N_SLOTS):
                totals[slot] += cell[slot]
        return totals

    def cause_totals(self) -> dict[Cause, int]:
        totals = self.slot_totals()
        return {cause: totals[cause] for cause in Cause}

    # ------------------------------------------------------------------
    def region_rows(self) -> list[dict]:
        """One summary row per region, ranked by lost cycles (desc).

        Each row has ``region`` (key), ``label``, ``useful``, ``lost``,
        and ``causes`` (cause-name -> cycles, losses only).
        """

        per_region: dict[int, list[int]] = {}
        for (region, _thread), cell in self.cells.items():
            row = per_region.setdefault(region, [0] * N_SLOTS)
            for slot in range(N_SLOTS):
                row[slot] += cell[slot]
        rows = []
        for region, totals in per_region.items():
            lost = sum(totals) - totals[Cause.USEFUL]
            rows.append({
                "region": region,
                "label": self.regions.get(region, f"region {region}"),
                "useful": totals[Cause.USEFUL],
                "lost": lost,
                "causes": {cause.name.lower(): totals[cause]
                           for cause in CAUSE_SLOTS if totals[cause]},
            })
        rows.sort(key=lambda row: (-row["lost"], row["region"]))
        return rows

    # ------------------------------------------------------------------
    def check(self, end_cycle: int) -> list[tuple[int, int, int]]:
        """Verify ``useful + Σ causes == end_cycle`` for every thread.

        Returns one ``(thread, accounted, expected)`` tuple per
        violating thread — empty means the invariant holds exactly.
        """

        violations = []
        for thread, row in enumerate(self.thread_totals()):
            accounted = sum(row)
            if accounted != end_cycle:
                violations.append((thread, accounted, end_cycle))
        return violations

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, AttributionTable):
            return NotImplemented
        return (self.num_threads == other.num_threads
                and self.regions == other.regions
                and {k: v for k, v in self.cells.items() if any(v)}
                == {k: v for k, v in other.cells.items() if any(v)})
