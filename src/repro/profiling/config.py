"""Configuration of the embedded profiling unit (§IV of the paper).

The profiling unit snoops the accelerator's pipelines and collects two
kinds of Paraver records:

* **states** — one 2-bit state per hardware thread (Idle / Running /
  Critical / Spinning, Fig. 2).  Whenever at least one thread changes
  state, a record of ``2*N_threads + 32`` bits (all states + clock) is
  pushed into the trace buffer (§IV-B.1).
* **events** — per-thread aggregating counters (stalls, floating-point
  and integer operation counts, memory bytes read/written), flushed to
  the trace every ``sampling_period`` cycles (§IV-B.2).

The trace buffer is ``buffer_width`` bits wide (512 by default, the
external memory controller's data width) and ``buffer_depth`` lines
deep; when nearly full it is flushed to external memory, consuming real
bus bandwidth in the simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["ThreadState", "EventKind", "ProfilingConfig", "STATE_ENCODING",
           "ATTRIBUTION_EVENTS"]


class ThreadState(enum.IntEnum):
    """Per-thread execution state with its 2-bit hardware encoding (§IV-B.1)."""

    IDLE = 0b00
    RUNNING = 0b01
    CRITICAL = 0b10
    SPINNING = 0b11


#: state -> 2-bit encoding, as listed in the paper
STATE_ENCODING = {state: int(state) for state in ThreadState}


class EventKind(enum.Enum):
    """Event counter types supported by the profiling unit (§IV-B.2)."""

    STALLS = "stalls"
    FLOPS = "flops"
    INTOPS = "intops"
    MEM_READ_BYTES = "mem_read_bytes"
    MEM_WRITE_BYTES = "mem_write_bytes"
    # cycle-accounting counters (SimConfig.attribution).  These are
    # *virtual*: produced by the simulator's accounting layer rather
    # than the modeled hardware unit, so they are never part of
    # ProfilingConfig.events and contribute no flush traffic — the
    # simulated cycles are identical with attribution on or off.
    ATTR_USEFUL = "attr_useful"
    ATTR_II_LIMIT = "attr_ii_limit"
    ATTR_LOCAL_PORT_CONFLICT = "attr_local_port_conflict"
    ATTR_DRAM_LATENCY = "attr_dram_latency"
    ATTR_DRAM_ARBITRATION = "attr_dram_arbitration"
    ATTR_DRAM_ROW_MISS = "attr_dram_row_miss"
    ATTR_SYNC_WAIT = "attr_sync_wait"
    ATTR_DRAIN = "attr_drain"
    ATTR_CONTROL = "attr_control"

    # members are singletons and compare by identity, so the identity
    # hash is consistent with equality — and C-level, unlike
    # ``Enum.__hash__`` which rehashes the member name on every dict or
    # set lookup (the recorder does millions of those per run)
    __hash__ = object.__hash__

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: the attribution counters in :class:`~repro.profiling.attribution.Cause`
#: slot order (USEFUL first)
ATTRIBUTION_EVENTS: tuple[EventKind, ...] = (
    EventKind.ATTR_USEFUL, EventKind.ATTR_II_LIMIT,
    EventKind.ATTR_LOCAL_PORT_CONFLICT, EventKind.ATTR_DRAM_LATENCY,
    EventKind.ATTR_DRAM_ARBITRATION, EventKind.ATTR_DRAM_ROW_MISS,
    EventKind.ATTR_SYNC_WAIT, EventKind.ATTR_DRAIN, EventKind.ATTR_CONTROL,
)


@dataclass(frozen=True)
class ProfilingConfig:
    """What the profiling unit records and how."""

    enabled: bool = True
    record_states: bool = True
    events: tuple[EventKind, ...] = (
        EventKind.STALLS, EventKind.FLOPS, EventKind.INTOPS,
        EventKind.MEM_READ_BYTES, EventKind.MEM_WRITE_BYTES,
    )
    #: cycles between event-counter flushes ("user-adjustable, a proxy over
    #: how fine-grained information is required", §IV-B.2)
    sampling_period: int = 2048
    #: trace buffer line width in bits (the external controller data width)
    buffer_width: int = 512
    #: trace buffer depth in lines; flushed when nearly full
    buffer_depth: int = 64
    #: counter width in bits
    counter_width: int = 64

    @staticmethod
    def disabled() -> "ProfilingConfig":
        """A configuration with the whole unit absent (baseline hardware)."""

        return ProfilingConfig(enabled=False, record_states=False, events=())

    def state_record_bits(self, num_threads: int) -> int:
        """Size of one state record: 2 bits per thread + 32-bit clock (§IV-B.1)."""

        return 2 * num_threads + 32

    def event_record_bits(self, num_threads: int) -> int:
        """Size of one event flush: one counter per event per thread + clock."""

        return self.counter_width * len(self.events) * num_threads + 32
