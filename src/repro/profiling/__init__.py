"""The embedded profiling unit: configuration and runtime recording.

See §IV of the paper and DESIGN.md §3/§5.
"""

from .config import EventKind, ProfilingConfig, STATE_ENCODING, ThreadState
from .recorder import ProfilingRecorder, RunTrace, StateInterval

__all__ = [
    "EventKind", "ProfilingConfig", "STATE_ENCODING", "ThreadState",
    "ProfilingRecorder", "RunTrace", "StateInterval",
]
