"""Runtime side of the profiling unit: state & event collection.

The :class:`ProfilingRecorder` is the simulation counterpart of the
hardware profiling unit in Fig. 1: the executor calls into it when
threads change state (Fig. 2), when pipelines stall, when compute
stages retire work, and when memory traffic passes the Avalon
interface.  Events are aggregated into sampling-period bins exactly as
the hardware's periodically-flushed counters would produce them
(§IV-B.2); states are recorded per change (§IV-B.1).

The recorder also models the *cost* of tracing: it tracks how many
bits of trace data have been produced so the executor's flush process
can book the corresponding external-memory writes — the source of the
(small) runtime perturbation the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import telemetry
from .config import EventKind, ProfilingConfig, ThreadState

__all__ = ["StateInterval", "RunTrace", "ProfilingRecorder"]


@dataclass(frozen=True)
class StateInterval:
    """A maximal interval during which a thread stayed in one state."""

    thread: int
    state: ThreadState
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class RunTrace:
    """Everything the profiling unit captured during one run."""

    num_threads: int
    end_cycle: int
    sampling_period: int
    #: per-thread list of state intervals covering [0, end_cycle]
    states: list[list[StateInterval]]
    #: EventKind -> array[bins, threads] of per-window sums
    events: dict[EventKind, np.ndarray]
    #: bits of trace data produced (states + event flushes)
    trace_bits: int = 0
    #: number of buffer flushes to external memory
    flushes: int = 0

    def state_durations(self, thread: Optional[int] = None
                        ) -> dict[ThreadState, int]:
        """Total cycles per state, for one thread or all threads."""

        totals = {state: 0 for state in ThreadState}
        threads = range(self.num_threads) if thread is None else [thread]
        for t in threads:
            for interval in self.states[t]:
                totals[interval.state] += interval.duration
        return totals

    def state_fractions(self) -> dict[ThreadState, float]:
        """Fraction of total thread-time spent in each state."""

        totals = self.state_durations()
        denom = max(1, sum(totals.values()))
        return {state: value / denom for state, value in totals.items()}

    def event_series(self, kind: EventKind) -> np.ndarray:
        """[bins, threads] array of per-window event sums."""

        return self.events[kind]

    def window_starts(self, kind: EventKind) -> np.ndarray:
        """Start cycle of each sampling window of ``kind``'s series."""

        bins = self.events[kind].shape[0]
        return np.arange(bins, dtype=np.int64) * self.sampling_period


class ProfilingRecorder:
    """Collects states and events during a simulation run."""

    def __init__(self, config: ProfilingConfig, num_threads: int):
        self.config = config
        self.num_threads = num_threads
        self._state_log: list[list[tuple[int, ThreadState]]] = [
            [(0, ThreadState.IDLE)] for _ in range(num_threads)]
        self._bins: dict[EventKind, dict[int, np.ndarray]] = {
            kind: {} for kind in config.events}
        self._enabled_kinds = set(config.events)
        self.pending_bits = 0  # trace bits not yet flushed
        self.total_bits = 0
        self.flushes = 0

    # ------------------------------------------------------------------
    # states
    # ------------------------------------------------------------------
    def set_state(self, cycle: int, thread: int, state: ThreadState) -> None:
        log = self._state_log[thread]
        if log[-1][1] is state:
            return
        if not self.config.record_states or not self.config.enabled:
            log.append((cycle, state))
            return
        log.append((cycle, state))
        bits = self.config.state_record_bits(self.num_threads)
        self.pending_bits += bits
        self.total_bits += bits

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def add(self, cycle: int, thread: int, kind: EventKind,
            amount: float) -> None:
        if kind not in self._enabled_kinds or amount == 0:
            return
        period = self.config.sampling_period
        self._bin(kind, cycle // period)[thread] += amount

    def add_range(self, start: int, end: int, thread: int, kind: EventKind,
                  amount: float) -> None:
        """Distribute ``amount`` uniformly over cycles [start, end)."""

        if kind not in self._enabled_kinds or amount == 0:
            return
        period = self.config.sampling_period
        if end <= start:
            self._bin(kind, start // period)[thread] += amount
            return
        span = end - start
        first_bin = start // period
        last_bin = (end - 1) // period
        if first_bin == last_bin:
            self._bin(kind, first_bin)[thread] += amount
            return
        for b in range(first_bin, last_bin + 1):
            lo = max(start, b * period)
            hi = min(end, (b + 1) * period)
            self._bin(kind, b)[thread] += amount * (hi - lo) / span

    def _bin(self, kind: EventKind, index: int) -> np.ndarray:
        bins = self._bins[kind]
        arr = bins.get(index)
        if arr is None:
            arr = np.zeros(self.num_threads)
            bins[index] = arr
        return arr

    # ------------------------------------------------------------------
    # trace-buffer cost model
    # ------------------------------------------------------------------
    def sample_flush_bits(self) -> int:
        """Bits one periodic event flush writes (counters for all threads)."""

        if not self.config.enabled or not self.config.events:
            return 0
        bits = self.config.event_record_bits(self.num_threads)
        self.total_bits += bits
        return bits

    def drain_pending_bits(self) -> int:
        """Bits of state records accumulated since the last flush."""

        bits = self.pending_bits
        self.pending_bits = 0
        return bits

    # ------------------------------------------------------------------
    def finalize(self, end_cycle: int) -> RunTrace:
        with telemetry.span("profiling.finalize", category="profiling"):
            trace = self._finalize(end_cycle)
        telemetry.add("profiling.flushes", self.flushes)
        telemetry.add("profiling.trace_bits", self.total_bits)
        telemetry.add("profiling.state_records",
                      sum(len(log) for log in self._state_log))
        return trace

    def _finalize(self, end_cycle: int) -> RunTrace:
        states: list[list[StateInterval]] = []
        for thread in range(self.num_threads):
            log = self._state_log[thread]
            intervals = []
            for i, (cycle, state) in enumerate(log):
                nxt = log[i + 1][0] if i + 1 < len(log) else end_cycle
                if nxt > cycle:
                    intervals.append(StateInterval(thread, state, cycle, nxt))
            states.append(intervals)

        period = self.config.sampling_period
        n_bins = max(1, -(-max(1, end_cycle) // period))
        events: dict[EventKind, np.ndarray] = {}
        for kind, bins in self._bins.items():
            arr = np.zeros((n_bins, self.num_threads))
            for index, values in bins.items():
                if index < n_bins:
                    arr[index] += values
                else:  # clamp stragglers into the final window
                    arr[-1] += values
            events[kind] = arr
        return RunTrace(self.num_threads, end_cycle, period, states, events,
                        trace_bits=self.total_bits, flushes=self.flushes)
