"""Runtime side of the profiling unit: state & event collection.

The :class:`ProfilingRecorder` is the simulation counterpart of the
hardware profiling unit in Fig. 1: the executor calls into it when
threads change state (Fig. 2), when pipelines stall, when compute
stages retire work, and when memory traffic passes the Avalon
interface.  Events are aggregated into sampling-period bins exactly as
the hardware's periodically-flushed counters would produce them
(§IV-B.2); states are recorded per change (§IV-B.1).

The recorder also models the *cost* of tracing: it tracks how many
bits of trace data have been produced so the executor's flush process
can book the corresponding external-memory writes — the source of the
(small) runtime perturbation the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import telemetry
from .attribution import AttributionTable
from .config import (
    ATTRIBUTION_EVENTS, EventKind, ProfilingConfig, ThreadState,
)

__all__ = ["StateInterval", "RunTrace", "ProfilingRecorder"]


@dataclass(frozen=True)
class StateInterval:
    """A maximal interval during which a thread stayed in one state."""

    thread: int
    state: ThreadState
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class RunTrace:
    """Everything the profiling unit captured during one run."""

    num_threads: int
    end_cycle: int
    sampling_period: int
    #: per-thread list of state intervals covering [0, end_cycle]
    states: list[list[StateInterval]]
    #: EventKind -> array[bins, threads] of per-window sums
    events: dict[EventKind, np.ndarray]
    #: bits of trace data produced (states + event flushes)
    trace_bits: int = 0
    #: number of buffer flushes to external memory
    flushes: int = 0
    #: per-(region, thread) cycle accounting (SimConfig.attribution)
    attribution: Optional[AttributionTable] = None

    def state_durations(self, thread: Optional[int] = None
                        ) -> dict[ThreadState, int]:
        """Total cycles per state, for one thread or all threads."""

        totals = {state: 0 for state in ThreadState}
        threads = range(self.num_threads) if thread is None else [thread]
        for t in threads:
            for interval in self.states[t]:
                totals[interval.state] += interval.duration
        return totals

    def state_fractions(self) -> dict[ThreadState, float]:
        """Fraction of total thread-time spent in each state."""

        totals = self.state_durations()
        denom = max(1, sum(totals.values()))
        return {state: value / denom for state, value in totals.items()}

    def event_series(self, kind: EventKind) -> np.ndarray:
        """[bins, threads] array of per-window event sums.

        Raises a diagnostic :class:`KeyError` when ``kind`` was not in
        the run's profiling configuration (mirroring the graceful
        degradation of :func:`repro.analysis.diagnose`, which reports
        missing counters instead of crashing).
        """

        series = self.events.get(kind)
        if series is None:
            recorded = ", ".join(str(k) for k in self.events) or "none"
            raise KeyError(
                f"counter {kind!s} was not recorded in this trace "
                f"(recorded counters: {recorded}); add EventKind."
                f"{kind.name} to ProfilingConfig.events before the run")
        return series

    def window_starts(self, kind: EventKind) -> np.ndarray:
        """Start cycle of each sampling window of ``kind``'s series."""

        bins = self.event_series(kind).shape[0]
        return np.arange(bins, dtype=np.int64) * self.sampling_period


class ProfilingRecorder:
    """Collects states and events during a simulation run."""

    #: initial per-kind bin capacity; grows geometrically as needed
    _INITIAL_BINS = 64

    def __init__(self, config: ProfilingConfig, num_threads: int,
                 attribution: bool = False):
        self.config = config
        self.num_threads = num_threads
        self._state_log: list[list[tuple[int, ThreadState]]] = [
            [(0, ThreadState.IDLE)] for _ in range(num_threads)]
        # one preallocated [capacity, threads] array per counter kind;
        # deposits first accumulate in per-kind dicts ((bin, thread) ->
        # running sum, in deposit order, so the floating-point result
        # is bit-identical to adding into the array cell directly) and
        # are flushed into the arrays once at finalize — a dict upsert
        # is several times cheaper than a numpy scalar indexed add
        kinds = tuple(config.events)
        if attribution:
            # virtual counters: binned for visualization, but never part
            # of config.events, so the flush cost model (and therefore
            # the simulated cycles) is unchanged by attribution
            kinds += ATTRIBUTION_EVENTS
        self._series: dict[EventKind, np.ndarray] = {
            kind: np.zeros((self._INITIAL_BINS, num_threads))
            for kind in kinds}
        self._accum: dict[EventKind, dict] = {kind: {} for kind in kinds}
        self._used_bins: dict[EventKind, int] = {kind: 0 for kind in kinds}
        self._enabled_kinds = set(config.events)
        self.attribution: Optional[AttributionTable] = (
            AttributionTable(num_threads) if attribution else None)
        self.pending_bits = 0  # trace bits not yet flushed
        self.total_bits = 0
        self.flushes = 0

    # ------------------------------------------------------------------
    # states
    # ------------------------------------------------------------------
    def set_state(self, cycle: int, thread: int, state: ThreadState) -> None:
        log = self._state_log[thread]
        if log[-1][1] is state:
            return
        if not self.config.record_states or not self.config.enabled:
            log.append((cycle, state))
            return
        log.append((cycle, state))
        bits = self.config.state_record_bits(self.num_threads)
        self.pending_bits += bits
        self.total_bits += bits

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def add(self, cycle: int, thread: int, kind: EventKind,
            amount: float) -> None:
        if kind not in self._enabled_kinds or amount == 0:
            return
        index = cycle // self.config.sampling_period
        bucket = self._accum[kind]
        key = (index, thread)
        bucket[key] = bucket.get(key, 0.0) + amount

    def add_range(self, start: int, end: int, thread: int, kind: EventKind,
                  amount: float) -> None:
        """Distribute ``amount`` uniformly over cycles [start, end).

        A zero-length range (``end <= start``) covers no cycles and
        deposits nothing: the executor emits such ranges for zero-trip
        loops, and depositing the full amount would double-count work
        already booked by the surrounding real ranges.
        """

        if kind not in self._enabled_kinds or amount == 0 or end <= start:
            return
        period = self.config.sampling_period
        first_bin = start // period
        last_bin = (end - 1) // period
        bucket = self._accum[kind]
        if first_bin == last_bin:
            key = (first_bin, thread)
            bucket[key] = bucket.get(key, 0.0) + amount
            return
        # per-bin overlap with [start, end) as a weight vector
        edges = np.arange(first_bin, last_bin + 2, dtype=np.int64) * period
        lo = np.maximum(edges[:-1], start)
        hi = np.minimum(edges[1:], end)
        shares = (hi - lo) * (amount / (end - start))
        for index, share in enumerate(shares.tolist(), first_bin):
            key = (index, thread)
            bucket[key] = bucket.get(key, 0.0) + share

    def add_many(self, start: int, end: int, thread: int, pairs) -> None:
        """Deposit several event kinds over one shared [start, end) range.

        Semantically identical to calling :meth:`add_range` once per
        ``(kind, amount)`` pair — including bit-exact floating-point
        results, the per-bin weights are computed with the same
        expressions — but the bin arithmetic is shared across the pairs.
        """

        if end <= start:
            return
        period = self.config.sampling_period
        first_bin = start // period
        last_bin = (end - 1) // period
        enabled = self._enabled_kinds
        accum = self._accum
        if first_bin == last_bin:
            key = None
            for kind, amount in pairs:
                if amount and kind in enabled:
                    if key is None:
                        key = (first_bin, thread)
                    bucket = accum[kind]
                    bucket[key] = bucket.get(key, 0.0) + amount
            return
        edges = np.arange(first_bin, last_bin + 2, dtype=np.int64) * period
        span = np.minimum(edges[1:], end) - np.maximum(edges[:-1], start)
        for kind, amount in pairs:
            if amount and kind in enabled:
                bucket = accum[kind]
                shares = span * (amount / (end - start))
                for index, share in enumerate(shares.tolist(), first_bin):
                    key = (index, thread)
                    bucket[key] = bucket.get(key, 0.0) + share

    def attr_deposit(self, start: int, end: int, thread: int, region: int,
                     amounts) -> None:
        """Account ``amounts`` cycles (slot order) to ``(region, thread)``.

        The table cell takes the integer amounts verbatim; the binned
        counter series spread each amount over the sampling windows
        overlapping ``[start, end)`` with *integer-exact* telescoping
        shares (cumulative ``amount * covered // span`` differences), so
        every binned value is an integer and the per-kind series sum
        equals the table exactly — the ``.prv`` round trip is lossless.
        """

        table = self.attribution
        if table is None:
            return
        cell = table.cells.get((region, thread))
        if cell is None:
            cell = table.cells[(region, thread)] = [0] * len(amounts)
        accum = self._accum
        period = self.config.sampling_period
        if end <= start:
            for slot, amount in enumerate(amounts):
                if amount:
                    cell[slot] += amount
            return
        first_bin = start // period
        last_bin = (end - 1) // period
        if first_bin == last_bin:
            key = (first_bin, thread)
            for slot, amount in enumerate(amounts):
                if amount:
                    cell[slot] += amount
                    bucket = accum[ATTRIBUTION_EVENTS[slot]]
                    bucket[key] = bucket.get(key, 0.0) + amount
            return
        span = end - start
        for slot, amount in enumerate(amounts):
            if not amount:
                continue
            cell[slot] += amount
            bucket = accum[ATTRIBUTION_EVENTS[slot]]
            prev = 0
            for index in range(first_bin, last_bin):
                covered = (index + 1) * period - start
                cum = amount * covered // span
                if cum != prev:
                    key = (index, thread)
                    bucket[key] = bucket.get(key, 0.0) + (cum - prev)
                    prev = cum
            if amount != prev:
                key = (last_bin, thread)
                bucket[key] = bucket.get(key, 0.0) + (amount - prev)

    def _rows(self, kind: EventKind, index: int) -> np.ndarray:
        """The kind's [capacity, threads] array, grown to hold ``index``."""

        series = self._series[kind]
        capacity = series.shape[0]
        if index >= capacity:
            while capacity <= index:
                capacity *= 2
            grown = np.zeros((capacity, self.num_threads))
            grown[:series.shape[0]] = series
            self._series[kind] = series = grown
        if index >= self._used_bins[kind]:
            self._used_bins[kind] = index + 1
        return series

    # ------------------------------------------------------------------
    # trace-buffer cost model
    # ------------------------------------------------------------------
    def sample_flush_bits(self) -> int:
        """Bits one periodic event flush writes (counters for all threads)."""

        if not self.config.enabled or not self.config.events:
            return 0
        bits = self.config.event_record_bits(self.num_threads)
        self.total_bits += bits
        return bits

    def drain_pending_bits(self) -> int:
        """Bits of state records accumulated since the last flush."""

        bits = self.pending_bits
        self.pending_bits = 0
        return bits

    # ------------------------------------------------------------------
    def finalize(self, end_cycle: int) -> RunTrace:
        with telemetry.span("profiling.finalize", category="profiling"):
            trace = self._finalize(end_cycle)
        telemetry.add("profiling.flushes", self.flushes)
        telemetry.add("profiling.trace_bits", self.total_bits)
        telemetry.add("profiling.state_records",
                      sum(len(log) for log in self._state_log))
        return trace

    def _finalize(self, end_cycle: int) -> RunTrace:
        states: list[list[StateInterval]] = []
        for thread in range(self.num_threads):
            log = self._state_log[thread]
            # each record runs until the next record's cycle (the last
            # until end_cycle); empty intervals (same-cycle
            # re-transitions) are dropped
            ends = [cycle for cycle, _ in log]
            del ends[0]
            ends.append(end_cycle)
            states.append([StateInterval(thread, st, s, e)
                           for (s, st), e in zip(log, ends) if e > s])

        # drain the deposit accumulators into the per-kind arrays (each
        # cell receives the sum of its deposits, accumulated in deposit
        # order — bit-identical to per-deposit array adds; cells are
        # unique dict keys, so the scatter-add touches each exactly once)
        for kind, bucket in self._accum.items():
            if not bucket:
                continue
            n = len(bucket)
            idx = np.fromiter((k[0] for k in bucket), dtype=np.intp,
                              count=n)
            thr = np.fromiter((k[1] for k in bucket), dtype=np.intp,
                              count=n)
            vals = np.fromiter(bucket.values(), dtype=np.float64, count=n)
            series = self._rows(kind, int(idx.max()))
            np.add.at(series, (idx, thr), vals)
            bucket.clear()

        period = self.config.sampling_period
        n_bins = max(1, -(-max(1, end_cycle) // period))
        events: dict[EventKind, np.ndarray] = {}
        for kind, series in self._series.items():
            used = self._used_bins[kind]
            arr = np.zeros((n_bins, self.num_threads))
            take = min(used, n_bins)
            arr[:take] = series[:take]
            if used > n_bins:  # clamp stragglers into the final window
                arr[-1] += series[n_bins:used].sum(axis=0)
            events[kind] = arr
        return RunTrace(self.num_threads, end_cycle, period, states, events,
                        trace_bits=self.total_bits, flushes=self.flushes,
                        attribution=self.attribution)
