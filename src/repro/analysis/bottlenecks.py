"""Automatic bottleneck classification from profiling traces.

The paper's case studies walk through the reasoning "high spinning →
serialization", "low bandwidth + stalls → memory-bound", "phased
bandwidth/compute → load/compute alternation" by eye.  This module
encodes the same reasoning so a run can be classified programmatically —
the paper's §VII future-work direction of feeding profiles back into
the compiler starts exactly here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..profiling.attribution import Cause
from ..profiling.config import EventKind, ThreadState
from ..profiling.recorder import RunTrace
from ..paraver.analysis import (
    load_balance, phase_overlap, thread_activity_windows, total_gflops,
)
from ..sim.executor import SimResult

__all__ = ["Bottleneck", "Diagnosis", "diagnose"]


class Bottleneck(enum.Enum):
    SYNCHRONIZATION = "synchronization"   # spinning/critical dominate
    MEMORY_LATENCY = "memory-latency"     # stalls high, bandwidth low
    MEMORY_BANDWIDTH = "memory-bandwidth"  # stalls high, bandwidth near peak
    LOAD_IMBALANCE = "load-imbalance"     # threads idle while others work
    PHASED_EXECUTION = "phased-execution"  # alternating load/compute phases
    COMPUTE_BOUND = "compute-bound"       # none of the above

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class Diagnosis:
    """Classification plus the evidence behind it."""

    primary: Bottleneck
    findings: list[str] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        lines = [f"primary bottleneck: {self.primary}"]
        lines += [f"  - {finding}" for finding in self.findings]
        return "\n".join(lines)


def diagnose(result: SimResult, peak_bandwidth_gbs: Optional[float] = None,
             sync_threshold: float = 0.10, stall_threshold: float = 0.20,
             balance_threshold: float = 0.75,
             overlap_low: float = 0.15) -> Diagnosis:
    """Classify the dominant bottleneck of a simulated run."""

    trace = result.trace
    fractions = trace.state_fractions()
    findings: list[str] = []
    metrics: dict[str, float] = {}

    sync = fractions[ThreadState.SPINNING] + fractions[ThreadState.CRITICAL]
    metrics["sync_fraction"] = sync
    metrics["spin_fraction"] = fractions[ThreadState.SPINNING]

    total_thread_cycles = max(1, trace.end_cycle * trace.num_threads)
    stall_fraction = sum(result.stalls) / total_thread_cycles
    metrics["stall_fraction"] = stall_fraction

    balance = load_balance(trace)
    metrics["load_balance"] = balance

    # Temporal balance: even equal-duration threads are imbalanced when
    # staggered starts keep them from overlapping (the π case study's
    # startup-overhead signature, Figs. 11-13).  Threads that never left
    # IDLE report a (0, 0) span and must not drag the union back to
    # cycle 0; disjoint activity makes the common window negative, so
    # the ratio is clamped to [0, 1].
    spans = thread_activity_windows(trace)
    active_spans = spans[spans[:, 1] > spans[:, 0]]
    if active_spans.size:
        union = active_spans[:, 1].max() - active_spans[:, 0].min()
        common = active_spans[:, 1].min() - active_spans[:, 0].max()
        temporal = min(1.0, max(0.0, common / union)) if union > 0 else 1.0
    else:
        temporal = 1.0
    metrics["temporal_overlap"] = float(temporal)

    bandwidth = result.bandwidth_gbs()
    metrics["bandwidth_gbs"] = bandwidth
    metrics["gflops"] = total_gflops(trace, result.clock_mhz)

    # The profiling config may omit counters (§IV-B.2 event selection);
    # degrade to the findings the remaining data supports.
    missing = [kind.value for kind in
               (EventKind.MEM_READ_BYTES, EventKind.FLOPS)
               if kind not in trace.events]
    if missing:
        findings.append(
            f"counters not recorded: {', '.join(missing)} — phase and "
            "bandwidth findings skipped")
    phases = phase_overlap(trace, result.clock_mhz)
    metrics["phase_overlap"] = phases.overlap_fraction

    # When the run carried cycle accounting (SimConfig.attribution), use
    # the measured per-cause totals as direct evidence instead of
    # leaving the classifier to infer causes from aggregate counters.
    table = getattr(result, "attribution", None)
    if table is None:
        table = getattr(trace, "attribution", None)
    if table is not None:
        totals = table.cause_totals()
        lost = {cause.name.lower(): value for cause, value in totals.items()
                if cause is not Cause.USEFUL and value > 0}
        for name, value in lost.items():
            metrics[f"attr_{name}"] = value / total_thread_cycles
        if lost:
            ranked = sorted(lost.items(), key=lambda kv: -kv[1])
            top = ", ".join(
                f"{name} ({100 * value / total_thread_cycles:.1f}%)"
                for name, value in ranked[:3])
            findings.append(f"cycle accounting: lost cycles led by {top}")

    if sync > sync_threshold:
        findings.append(
            f"{100 * sync:.1f}% of thread time in critical sections or "
            f"spinning on locks — the code serializes (Amdahl)")
        return Diagnosis(Bottleneck.SYNCHRONIZATION, findings, metrics)

    if balance < balance_threshold or temporal < balance_threshold - 0.25:
        findings.append(
            f"load balance {balance:.2f} / temporal overlap {temporal:.2f}: "
            "threads idle while others work (e.g. staggered thread starts "
            "on a small workload)")
        return Diagnosis(Bottleneck.LOAD_IMBALANCE, findings, metrics)

    if stall_fraction > stall_threshold:
        if peak_bandwidth_gbs and bandwidth > 0.5 * peak_bandwidth_gbs:
            findings.append(
                f"stall fraction {100 * stall_fraction:.1f}% with bandwidth "
                f"{bandwidth:.2f} GB/s near the platform peak — bandwidth bound")
            return Diagnosis(Bottleneck.MEMORY_BANDWIDTH, findings, metrics)
        findings.append(
            f"stall fraction {100 * stall_fraction:.1f}% with bandwidth "
            f"{bandwidth:.2f} GB/s well below peak — latency bound; consider "
            "wider (vector) accesses or preloading into local memory")
        return Diagnosis(Bottleneck.MEMORY_LATENCY, findings, metrics)

    if not missing and phases.load_windows > 0 and phases.compute_windows > 0 \
            and phases.overlap_fraction < overlap_low:
        findings.append(
            "distinct load and compute phases with almost no overlap — "
            "double buffering would overlap prefetch with compute")
        return Diagnosis(Bottleneck.PHASED_EXECUTION, findings, metrics)

    findings.append("no dominant stall/sync/imbalance signal: compute bound")
    return Diagnosis(Bottleneck.COMPUTE_BOUND, findings, metrics)
