"""Trace-driven bottleneck analysis (profile-guided reasoning)."""

from .bottlenecks import Bottleneck, Diagnosis, diagnose

__all__ = ["Bottleneck", "Diagnosis", "diagnose"]
