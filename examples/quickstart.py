#!/usr/bin/env python3
"""Quickstart: compile a mini-C OpenMP kernel, simulate it, profile it.

Walks the full flow of the paper in ~40 lines:

1. write an OpenMP target-offloading kernel (mini-C);
2. compile it with the Nymble-like HLS flow (profiling unit included);
3. run it on the cycle-level board simulator;
4. inspect the Paraver-style trace: states, events, bottleneck analysis;
5. write a real Paraver .prv/.pcf/.row trace you can open in the tool.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Program, SimConfig
from repro.analysis import diagnose
from repro.paraver import (
    bandwidth_series_gbs, render_series, render_state_timeline, write_trace,
)

SOURCE = """
void saxpy(float* x, float* y, float alpha, int n) {
  #pragma omp target parallel map(to:x[0:n], alpha) map(tofrom:y[0:n]) \\
      num_threads(4)
  {
    int tid = omp_get_thread_num();
    int nthreads = omp_get_num_threads();
    for (int i = tid; i < n; i += nthreads) {
      y[i] = alpha * x[i] + y[i];
    }
  }
}
"""


def main() -> None:
    # -- compile ---------------------------------------------------------
    program = Program(SOURCE, sim_config=SimConfig(thread_start_interval=100))
    acc = program.accelerator
    print(f"compiled {acc.name!r}: {acc.num_threads} hardware threads, "
          f"{acc.area.registers} registers, {acc.area.alms} ALMs, "
          f"Fmax {acc.area.fmax_mhz} MHz")
    overhead = acc.profiling_overhead()
    print(f"profiling unit overhead: +{overhead['registers_pct']:.2f}% "
          f"registers, +{overhead['alms_pct']:.2f}% ALMs, "
          f"-{overhead['fmax_delta_mhz']:.1f} MHz\n")

    # -- run ------------------------------------------------------------
    n = 4096
    rng = np.random.default_rng(7)
    x = rng.random(n, dtype=np.float32)
    y = rng.random(n, dtype=np.float32)
    expected = 2.5 * x + y
    outcome = program.run(x=x, y=y, alpha=2.5, n=n)
    result = outcome.sim
    assert np.allclose(y, expected, rtol=1e-5), "simulation result is wrong!"
    print(f"simulated {result.cycles} cycles "
          f"({result.seconds * 1e6:.1f} us at {result.clock_mhz} MHz)")
    print(f"memory bandwidth: {result.bandwidth_gbs():.2f} GB/s, "
          f"compute: {result.gflops:.3f} GFLOP/s\n")

    # -- analyze -----------------------------------------------------------
    print(render_state_timeline(result.trace, width=72))
    print()
    bw = bandwidth_series_gbs(result.trace, result.clock_mhz)
    print(render_series(bw, width=72, height=5, label="bandwidth GB/s"))
    print()
    print(diagnose(result))

    # -- export a genuine Paraver trace -----------------------------------
    files = write_trace(result.trace, "saxpy_trace")
    print(f"\nParaver trace written: {files.prv} (+ .pcf/.row) — "
          "load it in wxparaver to see the same timeline")


if __name__ == "__main__":
    main()
