#!/usr/bin/env python3
"""Using the toolchain on your own kernel: a stencil walk-through.

Shows the intended user workflow beyond the paper's two case studies:
write a kernel, look at the trace, act on the diagnosis, measure again —
the profile-guided loop the paper's §VII sketches as future work.

Run:  python examples/custom_kernel_exploration.py
"""

import numpy as np

from repro import Program, SimConfig
from repro.analysis import diagnose
from repro.paraver import bandwidth_series_gbs, render_series

N = 2048

#: v1 — every stencil point reads its three inputs from external memory
NAIVE_STENCIL = """
void stencil(float* src, float* dst, int n) {
  #pragma omp target parallel map(to:src[0:n]) map(from:dst[0:n]) \\
      num_threads(8)
  {
    int t = omp_get_thread_num();
    int nt = omp_get_num_threads();
    for (int i = t + 1; i < n - 1; i += nt) {
      dst[i] = 0.25f * src[i-1] + 0.5f * src[i] + 0.25f * src[i+1];
    }
  }
}
"""

#: v2 — tiles are staged through BRAM with wide loads (what the
#: diagnosis of v1 suggests)
TILED_STENCIL = """
#define TILE 64

void stencil(float* src, float* dst, int n) {
  #pragma omp target parallel map(to:src[0:n]) map(from:dst[0:n]) \\
      num_threads(8)
  {
    int t = omp_get_thread_num();
    int nt = omp_get_num_threads();
    for (int base = t * TILE; base < n - TILE; base += nt * TILE) {
      float tile[TILE + 2];
      for (int v = 0; v < TILE; v += 4) {
        *((float4*) &tile[v + 1]) = *((float4*) &src[base + v]);
      }
      if (base > 0) { tile[0] = src[base - 1]; }
      tile[TILE + 1] = src[base + TILE];
      for (int i = 0; i < TILE; ++i) {
        int g = base + i;
        if (g > 0) {
          if (g < n - 1) {
            dst[g] = 0.25f * tile[i] + 0.5f * tile[i+1]
                   + 0.25f * tile[i+2];
          }
        }
      }
    }
  }
}
"""


def run(source: str, label: str):
    rng = np.random.default_rng(3)
    src = rng.random(N, dtype=np.float32)
    dst = np.zeros(N, dtype=np.float32)
    program = Program(source, sim_config=SimConfig(thread_start_interval=50))
    outcome = program.run(src=src, dst=dst, n=N)
    result = outcome.sim
    reference = np.copy(dst)
    reference[1:-1] = 0.25 * src[:-2] + 0.5 * src[1:-1] + 0.25 * src[2:]
    # edges differ between versions; compare the interior
    interior = slice(64, N - 64)
    ok = np.allclose(dst[interior], reference[interior], rtol=1e-4)
    print(f"--- {label}: {result.cycles} cycles, "
          f"{result.bandwidth_gbs():.2f} GB/s, correct={ok} ---")
    print(diagnose(result))
    bw = bandwidth_series_gbs(result.trace, result.clock_mhz)
    print(render_series(bw, width=72, height=3, label="bandwidth"))
    print()
    return result


def main() -> None:
    print("=== profile-guided optimization of a 3-point stencil ===\n")
    naive = run(NAIVE_STENCIL, "v1: element-wise external reads")
    tiled = run(TILED_STENCIL, "v2: BRAM tiles + vector loads")
    print(f"speedup from acting on the diagnosis: "
          f"{naive.cycles / tiled.cycles:.2f}x")


if __name__ == "__main__":
    main()
