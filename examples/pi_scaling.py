#!/usr/bin/env python3
"""The paper's π case study: thread-start overhead vs workload (§V-D).

Sweeps the iteration count of the π series and shows how the software
overhead of starting the hardware threads dominates small workloads —
the Figs. 11-13 state views and their 0.146/0.556/1.507 GFLOP/s series
(scaled sizes here; the shape is what reproduces).

Run:  python examples/pi_scaling.py
"""

import math

from repro.analysis import diagnose
from repro.apps import run_pi
from repro.core import SimConfig
from repro.paraver import render_state_timeline, thread_activity_windows

#: scaled counterparts of the paper's 1M / 4M / 10M iteration points
SWEEP = (32_000, 128_000, 320_000)
#: cycles between successive software thread starts (scaled)
START_INTERVAL = 12_000


def main() -> None:
    config = SimConfig(thread_start_interval=START_INTERVAL)
    print("=== pi series scaling (paper Figs. 11-13) ===")
    print(f"thread start interval: {START_INTERVAL} cycles\n")
    print(f"{'steps':>9s} {'pi error':>10s} {'cycles':>9s} {'GFLOP/s':>8s}")
    runs = {}
    for steps in SWEEP:
        run = run_pi(steps, sim_config=config)
        runs[steps] = run
        print(f"{steps:9d} {run.error:10.2e} {run.cycles:9d} "
              f"{run.gflops:8.3f}")

    print("\npaper reference: 1M -> 0.146, 4M -> 0.556, 10M -> 1.507 GFLOP/s")
    ratio = runs[SWEEP[-1]].gflops / runs[SWEEP[0]].gflops
    print(f"measured rise across the sweep: {ratio:.1f}x "
          f"(paper: {1.507 / 0.146:.1f}x)\n")

    for steps in SWEEP:
        run = runs[steps]
        spans = thread_activity_windows(run.result.trace)
        overlap = "yes" if spans[:-1, 1].min() > spans[-1, 0] else "no"
        print(f"--- {steps} steps (threads all overlap: {overlap}) ---")
        print(render_state_timeline(run.result.trace, width=72))
        print()

    print("--- automatic diagnosis at the smallest size ---")
    print(diagnose(runs[SWEEP[0]].result))

    # the paper extrapolates to 15e9 iterations (36.84 GFLOP/s): at large
    # sizes the startup cost vanishes and the pipeline rate is the limit
    big = run_pi(2_560_000, sim_config=config)
    print(f"\nextrapolation point: {big.steps} steps -> "
          f"{big.gflops:.3f} GFLOP/s (startup amortized)")


if __name__ == "__main__":
    main()
