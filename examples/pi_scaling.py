#!/usr/bin/env python3
"""The paper's π case study: thread-start overhead vs workload (§V-D).

Sweeps the iteration count of the π series and shows how the software
overhead of starting the hardware threads dominates small workloads —
the Figs. 11-13 state views and their 0.146/0.556/1.507 GFLOP/s series
(scaled sizes here; the shape is what reproduces).

Run:  python examples/pi_scaling.py [--jobs N]

The three sweep points run through :func:`repro.sweep.run_sweep`, so
``--jobs 3`` simulates them in parallel worker processes; the rendered
output is identical at any worker count.
"""

import sys

from repro.analysis import diagnose
from repro.paraver import render_state_timeline, thread_activity_windows
from repro.sweep import JobSpec, execute_job, pi_sweep, run_sweep
from repro.sweep.spec import (PI_DEFAULT_START_INTERVAL as START_INTERVAL,
                              PI_DEFAULT_STEPS as SWEEP)


def main(jobs: int = 1) -> None:
    print("=== pi series scaling (paper Figs. 11-13) ===")
    print(f"thread start interval: {START_INTERVAL} cycles "
          f"(--jobs {jobs})\n")
    print(f"{'steps':>9s} {'pi error':>10s} {'cycles':>9s} {'GFLOP/s':>8s}")
    sweep = run_sweep(pi_sweep(), jobs=jobs, keep_runs=True)
    if sweep.failed:
        raise SystemExit("\n".join(f"{job.job_id} {job.status}: {job.error}"
                                   for job in sweep.failed))
    runs = {job.spec["steps"]: job.run for job in sweep.jobs}
    for steps in SWEEP:
        run = runs[steps]
        print(f"{steps:9d} {run.error:10.2e} {run.cycles:9d} "
              f"{run.gflops:8.3f}")

    print("\npaper reference: 1M -> 0.146, 4M -> 0.556, 10M -> 1.507 GFLOP/s")
    ratio = runs[SWEEP[-1]].gflops / runs[SWEEP[0]].gflops
    print(f"measured rise across the sweep: {ratio:.1f}x "
          f"(paper: {1.507 / 0.146:.1f}x)\n")

    for steps in SWEEP:
        run = runs[steps]
        spans = thread_activity_windows(run.result.trace)
        overlap = "yes" if spans[:-1, 1].min() > spans[-1, 0] else "no"
        print(f"--- {steps} steps (threads all overlap: {overlap}) ---")
        print(render_state_timeline(run.result.trace, width=72))
        print()

    print("--- automatic diagnosis at the smallest size ---")
    print(diagnose(runs[SWEEP[0]].result))

    # the paper extrapolates to 15e9 iterations (36.84 GFLOP/s): at large
    # sizes the startup cost vanishes and the pipeline rate is the limit
    result = execute_job(JobSpec(app="pi", steps=2_560_000,
                                 start_interval=START_INTERVAL),
                         keep_run=True)
    if result.status != "ok":
        raise SystemExit(f"{result.job_id} {result.status}: {result.error}")
    big = result.run
    print(f"\nextrapolation point: {big.steps} steps -> "
          f"{big.gflops:.3f} GFLOP/s (startup amortized)")


if __name__ == "__main__":
    n_jobs = 1
    if "--jobs" in sys.argv:
        at = sys.argv.index("--jobs")
        n_jobs = int(sys.argv[at + 1])
    main(jobs=n_jobs)
