#!/usr/bin/env python3
"""The paper's GEMM case study, end to end (§V-C, Figs. 3-9).

Simulates all five GEMM versions, prints the speedup chain the paper
reports (1x -> 1.14x -> ... -> 19x on real hardware), renders the
Fig. 6-style state view of the naive version, the Fig. 7-style relative
bandwidth comparison, and the Fig. 8/9 load-vs-compute phase pictures
for the blocked and double-buffered versions.  It then writes the whole
journey as a self-contained HTML report (the regenerable equivalent of
the paper's screenshots) plus the naive version's Paraver trace, which
``repro analyze gemm_naive_trace.prv`` re-analyzes without a simulator.

Run:  python examples/gemm_optimization_journey.py [DIM] [--jobs N]

The five versions are executed through :func:`repro.sweep.run_sweep`,
so passing ``--jobs 4`` simulates them in parallel worker processes
(with the shared compile cache) — the rendering below is unchanged
because simulated cycle counts are identical at any worker count.
"""

import sys

from repro.analysis import diagnose
from repro.paraver import (
    bandwidth_series_gbs, gflops_series, phase_overlap, render_series,
    render_state_timeline, write_trace,
)
from repro.profiling import ThreadState
from repro.report import render_comparison_text, write_html
from repro.sweep import gemm_sweep, run_sweep

PAPER_SPEEDUPS = {"naive": 1.0, "no_critical": 1.14, "vectorized": 2.2,
                  "blocked": 5.28, "double_buffered": 19.0}


def main(dim: int = 64, jobs: int = 1) -> None:
    print(f"=== GEMM optimization journey, DIM={dim}, 8 hardware threads "
          f"(--jobs {jobs}) ===\n")
    sweep = run_sweep(gemm_sweep(dim=dim), jobs=jobs, keep_runs=True)
    failed = sweep.failed
    if failed:
        raise SystemExit("\n".join(f"{job.job_id} {job.status}: {job.error}"
                                   for job in failed))
    runs = {job.spec["version"]: job.run for job in sweep.jobs}
    print(f"{'version':18s} {'cycles':>10s} {'speedup':>8s} {'paper':>7s} "
          f"{'GB/s':>6s} {'correct':>8s}")
    base = None
    for version, run in runs.items():
        base = base or run.cycles
        print(f"{version:18s} {run.cycles:10d} {base / run.cycles:7.2f}x "
              f"{PAPER_SPEEDUPS[version]:6.2f}x "
              f"{run.result.bandwidth_gbs():6.2f} {str(run.correct):>8s}")
    totals = sweep.totals()
    print(f"\n(sweep: {totals['jobs']} jobs in {sweep.wall_s:.1f}s wall, "
          f"compile cache {totals['cache_hits']} hits / "
          f"{totals['cache_misses']} misses)")

    # ------------------------------------------------------------------
    naive = runs["naive"].result
    fractions = naive.trace.state_fractions()
    print(f"\n--- Fig. 6: naive version state view "
          f"(critical {100 * fractions[ThreadState.CRITICAL]:.2f}%, "
          f"spinning {100 * fractions[ThreadState.SPINNING]:.2f}%; "
          "paper: 1.54% / 1.57%) ---")
    print(render_state_timeline(naive.trace, width=72))

    # zoom into one critical-section hand-off, like the paper's bottom pane
    # (thread 7 spins on the lock thread 6 currently holds)
    spin = next((iv for iv in naive.trace.states[7]
                 if iv.state is ThreadState.SPINNING), None)
    if spin is not None:
        print("\n--- Fig. 6 (zoom): threads spinning while another is in the "
              "critical section ---")
        print(render_state_timeline(naive.trace, width=72,
                                    start=max(0, spin.start - 60),
                                    end=spin.end + 120))

    # ------------------------------------------------------------------
    print("\n--- Fig. 7: relative memory bandwidth over normalized runtime ---")
    for version, run in runs.items():
        bw = bandwidth_series_gbs(run.result.trace, run.result.clock_mhz)
        print(render_series(bw, width=72, height=3, label=version))
        print()

    # ------------------------------------------------------------------
    for version, fig in (("blocked", "Fig. 8"), ("double_buffered", "Fig. 9")):
        result = runs[version].result
        phases = phase_overlap(result.trace, result.clock_mhz)
        print(f"--- {fig}: {version} load/compute phases — "
              f"{phases.load_windows} load-only, "
              f"{phases.compute_windows} compute-only, "
              f"{phases.overlap_windows} overlapping windows "
              f"(overlap fraction {phases.overlap_fraction:.2f}) ---")
        flops = gflops_series(result.trace, result.clock_mhz)
        print(render_series(flops, width=72, height=3,
                            label=f"{version} GFLOP/s"))
        print()

    print("--- automatic diagnosis of the naive version ---")
    print(diagnose(naive))
    files = write_trace(naive.trace, "gemm_naive_trace",
                        clock_mhz=naive.clock_mhz)
    print(f"\nParaver trace of the naive version written to {files.prv}")

    # ------------------------------------------------------------------
    reports = [run.report(label=version)
               for version, run in runs.items()]
    print("\n--- efficiency hierarchy across the journey "
          "(parallel = balance x sync x transfer) ---")
    print(render_comparison_text(reports), end="")
    write_html(reports, "gemm_journey_report.html",
               title=f"GEMM optimization journey, DIM={dim}")
    print("\nHTML report written to gemm_journey_report.html "
          "(self-contained, open in any browser)")


if __name__ == "__main__":
    argv = sys.argv[1:]
    n_jobs = 1
    if "--jobs" in argv:
        at = argv.index("--jobs")
        n_jobs = int(argv[at + 1])
        del argv[at:at + 2]
    main(int(argv[0]) if argv else 64, jobs=n_jobs)
