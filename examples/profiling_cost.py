#!/usr/bin/env python3
"""What does the profiling infrastructure itself cost? (§V-B)

Compiles the GEMM versions with and without the embedded profiling unit
and reports the register/ALM/Fmax overhead (the paper's Table-style
result), then shows the *runtime* perturbation of trace collection: the
periodic counter flushes share the DRAM with the application.

Run:  python examples/profiling_cost.py
"""

from repro.apps import run_gemm
from repro.apps.gemm import GEMM_VERSIONS
from repro.hls import HLSOptions
from repro.profiling import ProfilingConfig


def main() -> None:
    print("=== hardware cost of the profiling unit (paper §V-B) ===\n")
    print(f"{'version':18s} {'regs':>8s} {'ALMs':>7s} {'Fmax':>6s} "
          f"{'+regs%':>7s} {'+ALMs%':>7s} {'-MHz':>5s}")
    for version in GEMM_VERSIONS:
        run = run_gemm(version, dim=16)
        acc = run.accelerator
        ov = acc.profiling_overhead()
        print(f"{version:18s} {acc.area.registers:8d} {acc.area.alms:7d} "
              f"{acc.area.fmax_mhz:6.1f} {ov['registers_pct']:6.2f}% "
              f"{ov['alms_pct']:6.2f}% {ov['fmax_delta_mhz']:5.1f}")
    print("\npaper bands: registers <=5.4% (geo-mean 2.41%), "
          "ALMs <=4% (geo-mean 3.42%), Fmax -8 MHz max\n")

    print("=== runtime perturbation of tracing ===\n")
    for name, profiling in (("profiling on", ProfilingConfig()),
                            ("profiling off", ProfilingConfig.disabled())):
        options = HLSOptions(profiling=profiling)
        run = run_gemm("vectorized", dim=32, options=options)
        trace_bits = run.result.trace.trace_bits
        print(f"{name:14s}: {run.cycles:8d} cycles, "
              f"{run.result.dram_bytes_written:7d} B written to DRAM, "
              f"{trace_bits // 8:6d} B of trace data, "
              f"{run.result.trace.flushes} buffer flushes")

    print("\nsampling-period trade-off (finer sampling = more trace data):")
    for period in (512, 2048, 8192):
        options = HLSOptions(profiling=ProfilingConfig(sampling_period=period))
        run = run_gemm("vectorized", dim=32, options=options)
        print(f"  period {period:5d} cycles -> {run.result.trace.flushes:4d} "
              f"flushes, {run.result.trace.trace_bits // 8:7d} B of trace")


if __name__ == "__main__":
    main()
