#!/usr/bin/env python3
"""Analytically-pruned design-space exploration of the GEMM space.

Where ``gemm_optimization_journey.py`` replays the paper's five
hand-picked versions, this example lets the toolchain *find* them: it
enumerates every GEMM version crossed with the tuning knobs each one
exposes (vector length, tile size), scores all candidates with the
analytic performance/area model — compile-only, no simulation — prunes
the dominated points, simulates the survivors through the sweep
machinery, and reports the measured Pareto frontier of cycles versus
ALMs along with the rediscovered optimization journey.

Run:  python examples/design_space_exploration.py [DIM] [--jobs N]

Writes ``gemm_explore.json`` (schema ``repro.explore/1``) and
``gemm_explore.html`` (self-contained Pareto report).  The same flow is
available from the command line as ``repro explore --app gemm``.
"""

import sys

from repro.explore import explore, gemm_space, write_explore_html


def main(dim: int = 64, jobs: int = 1) -> None:
    space = gemm_space(dims=(dim,))
    print(f"=== design-space exploration, DIM={dim} "
          f"({len(space)} candidates, --jobs {jobs}) ===\n")

    result = explore(space, jobs=jobs)

    print(f"analytic model: scored {len(result.outcomes)} candidates in "
          f"{result.model_wall_s:.2f}s, pruned {len(result.pruned)} "
          f"({100 * result.pruned_fraction:.0f}%) without simulating them")
    print(f"evaluation sweep: {len(result.measured)} candidates measured "
          f"in {result.sweep.wall_s if result.sweep else 0.0:.1f}s\n")

    print("--- measured Pareto frontier (cycles vs ALMs) ---")
    for outcome in result.frontier("alms"):
        print(f"  {outcome.id:36s} {outcome.cycles:>10d} cycles "
              f"{outcome.prediction.alms:>7d} ALMs")

    print("\n--- rediscovered optimization journey ---")
    journey = result.journey()
    slowest = journey[0]["cycles"]
    for row in journey:
        note = "measured" if row["source"] == "measured" \
            else f"predicted (pruned: {row['pruned']})"
        print(f"  {row['group']:16s} {row['cycles']:>10d} cycles "
              f"{slowest / row['cycles']:6.2f}x  ({note})")

    result.to_json("gemm_explore.json")
    write_explore_html(result, "gemm_explore.html")
    print("\nresults written to gemm_explore.json (repro.explore/1) and "
          "gemm_explore.html (self-contained, open in any browser)")


if __name__ == "__main__":
    argv = sys.argv[1:]
    n_jobs = 1
    if "--jobs" in argv:
        at = argv.index("--jobs")
        n_jobs = int(argv[at + 1])
        del argv[at:at + 2]
    main(int(argv[0]) if argv else 64, jobs=n_jobs)
